"""Tests for the Table 2 safety pipeline."""

import pytest

from repro.checking import build_specs, check_safety, check_safety_both
from repro.checking.safety import CounterexampleUncertifiedError
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import parse_word
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    language_contains,
)


@pytest.fixture(scope="module")
def specs22(det_spec_ss_22, det_spec_op_22):
    return {SS: det_spec_ss_22, OP: det_spec_op_22}


class TestTable2Verdicts:
    """Theorem 4: seq, 2PL, DSTM and TL2 ensure opacity (hence strict
    serializability); modified TL2 + polite violates both."""

    @pytest.mark.parametrize(
        "make",
        [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
        ids=["seq", "2PL", "dstm", "TL2"],
    )
    def test_safe_tms(self, make, specs22):
        tm = make(2, 2)
        ss, op = check_safety_both(tm, specs=specs22)
        assert ss.holds, ss.counterexample
        assert op.holds, op.counterexample

    def test_modified_tl2_polite_unsafe(self, specs22):
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        ss, op = check_safety_both(tm, specs=specs22)
        assert not ss.holds and not op.holds

    def test_modified_tl2_unmanaged_also_unsafe(self, specs22):
        ss = check_safety(ModifiedTL2(2, 2), SS, spec=specs22[SS])
        assert not ss.holds

    def test_literal_read_tl2_ss_but_not_opaque(self, specs22):
        """Finding (see EXPERIMENTS.md): with Algorithm 4's literal read
        (no lock check), TL2 stays strictly serializable but loses
        opacity — a fresh transaction may read a variable whose commit
        lock is held by a validated-but-uncommitted writer.  The
        published TL2 samples the lock bit on reads, which is exactly our
        default model (and what Table 2's Y requires)."""
        tm = TL2(2, 2, read_checks_lock=False)
        ss, op = check_safety_both(tm, specs=specs22)
        assert ss.holds
        assert not op.holds
        assert op.counterexample == parse_word(
            "(r,1)1 (w,2)1 (w,1)2 c2 (r,2)2 c1"
        )
        assert not is_opaque(op.counterexample)


class TestCounterexamples:
    def test_counterexample_is_certified(self, specs22):
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        res = check_safety(tm, SS, spec=specs22[SS])
        assert res.counterexample is not None
        assert not is_strictly_serializable(res.counterexample)
        assert language_contains(tm, res.counterexample)

    def test_opacity_counterexample_certified(self, specs22):
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        res = check_safety(tm, OP, spec=specs22[OP])
        assert res.counterexample is not None
        assert not is_opaque(res.counterexample)

    def test_papers_w1_also_a_violation(self, specs22):
        """Our BFS finds a symmetric variant; the paper's exact w1 is
        equally a member of the bad language and outside piss."""
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        assert language_contains(tm, w1)
        assert not is_strictly_serializable(w1)
        assert not specs22[SS].accepts(w1)

    def test_counterexample_length_is_minimal_shape(self, specs22):
        # the shortest violation requires 2 writes + 2 reads + 2 commits
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        res = check_safety(tm, SS, spec=specs22[SS])
        assert len(res.counterexample) == 6


class TestResultMetadata:
    def test_sizes_reported(self, specs22):
        res = check_safety(SequentialTM(2, 2), SS, spec=specs22[SS])
        assert res.tm_states == 3
        assert res.spec_states == specs22[SS].num_states
        assert res.product_states > 0

    def test_verdict_string(self, specs22):
        res = check_safety(SequentialTM(2, 2), SS, spec=specs22[SS])
        assert res.verdict().startswith("Y")
        bad = check_safety(
            ManagedTM(ModifiedTL2(2, 2), PoliteManager()),
            SS,
            spec=specs22[SS],
        )
        assert bad.verdict().startswith("N")

    def test_spec_built_on_demand(self):
        res = check_safety(SequentialTM(2, 1), SS)
        assert res.holds

    def test_build_specs_helper(self):
        specs = build_specs(2, 1)
        assert set(specs) == {SS, OP}


class TestSmallInstances:
    @pytest.mark.parametrize(
        "make",
        [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
        ids=["seq", "2PL", "dstm", "TL2"],
    )
    def test_21_instances_safe(self, make):
        tm = make(2, 1)
        res = check_safety(tm, OP)
        assert res.holds

    def test_single_thread_always_safe(self):
        res = check_safety(DSTM(1, 2), OP)
        assert res.holds


class TestProfile:
    """check_safety(profile=...) fills the per-phase wall-time split."""

    KEYS = {
        "engine_build_s",
        "row_discovery_s",
        "product_bfs_s",
        "trace_rerun_s",
    }

    def test_holding_run_phases(self):
        prof = {}
        res = check_safety(DSTM(2, 1), SS, lazy_spec=True, profile=prof)
        assert res.holds
        assert set(prof) == self.KEYS
        assert prof["trace_rerun_s"] == 0.0
        assert prof["engine_build_s"] >= 0 and prof["product_bfs_s"] > 0
        assert prof["row_discovery_s"] > 0  # a cold engine computed rows

    def test_violating_run_records_trace_rerun(self):
        from repro.tm import ModifiedTL2

        prof = {}
        res = check_safety(ModifiedTL2(2, 2), SS, profile=prof)
        assert not res.holds
        assert prof["trace_rerun_s"] > 0

    def test_profiling_changes_no_result(self):
        plain = check_safety(DSTM(2, 1), OP, lazy_spec=True)
        prof = {}
        profiled = check_safety(
            DSTM(2, 1), OP, lazy_spec=True, profile=prof
        )
        assert (
            profiled.holds, profiled.counterexample, profiled.tm_states,
            profiled.spec_states, profiled.product_states,
        ) == (
            plain.holds, plain.counterexample, plain.tm_states,
            plain.spec_states, plain.product_states,
        )

    def test_uninstrumented_branch_reports_coarse_total(self):
        prof = {}
        res = check_safety(
            DSTM(2, 1), SS, lazy_spec=True, spec_compiled=False,
            profile=prof,
        )
        assert res.holds
        assert prof["product_bfs_s"] > 0  # the whole check, coarsely
        assert prof["engine_build_s"] == prof["trace_rerun_s"] == 0.0
