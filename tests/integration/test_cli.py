"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestWordCommand:
    def test_safe_word_exit_zero(self, capsys):
        assert main(["word", "(r,1)1 (w,2)1 c1"]) == 0
        out = capsys.readouterr().out
        assert "strictly serializable: yes" in out
        assert "opaque:                yes" in out

    def test_unsafe_word_exit_one(self, capsys):
        code = main(["word", "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "no" in out and "cycle:" in out

    def test_parse_error_exit_two(self, capsys):
        assert main(["word", "gibberish"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSafetyCommand:
    def test_single_tm(self, capsys):
        assert main(["safety", "seq", "-n", "2", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "seq" in out and "Y," in out

    def test_single_property(self, capsys):
        assert main(["safety", "2pl", "-k", "1", "--property", "op"]) == 0
        out = capsys.readouterr().out
        assert "Σdop" in out and "Σdss" not in out

    def test_violation_exit_code(self, capsys):
        code = main(["safety", "modtl2", "--manager", "polite"])
        assert code == 1
        assert "N," in capsys.readouterr().out

    def test_unknown_tm(self):
        with pytest.raises(SystemExit):
            main(["safety", "nosuchtm"])

    def test_unknown_manager(self):
        with pytest.raises(SystemExit):
            main(["safety", "seq", "--manager", "nosuch"])


class TestLivenessCommand:
    def test_dstm_aggressive(self, capsys):
        code = main(["liveness", "dstm", "--manager", "aggressive"])
        # obstruction free but not livelock free → violations exist
        assert code == 1
        out = capsys.readouterr().out
        assert "dstm+aggr" in out
        assert "Y," in out  # the OF cell

    def test_defaults_to_one_variable(self, capsys):
        assert main(["liveness", "seq"]) == 1
        assert "(2,1)" in capsys.readouterr().out


class TestSpecsCommand:
    def test_sizes(self, capsys):
        assert main(["specs", "-n", "2", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "Σss" in out and "Σop" in out

    def test_equivalence(self, capsys):
        code = main(["specs", "-n", "2", "-k", "1", "--check-equivalence"])
        assert code == 0
        assert "equivalent: True" in capsys.readouterr().out


class TestSimulateCommand:
    def test_table1_row(self, capsys):
        code = main(
            [
                "simulate",
                "2pl",
                "--schedule",
                "111112",
                "-P",
                "1:r1 w2 c",
                "-P",
                "2:w2 c",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run : (rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2" in out
        assert "word: (r,1)1, (w,2)1, c1" in out

    def test_bad_schedule_exit_two(self, capsys):
        code = main(
            ["simulate", "seq", "--schedule", "99", "-P", "1:c"]
        )
        assert code == 2


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.format_help()


class TestDenseKernelAndProfileFlags:
    def test_no_dense_kernel_identical_output(self, capsys):
        import re

        def norm(text):
            # normalize timings (and the padding/rules they stretch)
            # away; verdict cells and counterexample words must survive
            text = re.sub(r"\d+\.\d+s", "<t>", text)
            return re.sub(r"-+", "-", re.sub(r" +", " ", text))

        assert main(["safety", "dstm", "-k", "1", "--lazy-spec"]) == 0
        dense = capsys.readouterr().out
        assert main(
            ["safety", "dstm", "-k", "1", "--lazy-spec", "--no-dense-kernel"]
        ) == 0
        set_based = capsys.readouterr().out
        assert norm(dense) == norm(set_based)

    def test_profile_emits_json_phases_on_stderr(self, capsys):
        import json

        assert main(["safety", "2pl", "-k", "1", "--profile"]) == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.strip()]
        assert len(lines) == 2  # one JSON record per property
        for line in lines:
            record = json.loads(line)
            assert record["tm"] == "2PL"
            assert set(record["phases"]) == {
                "engine_build_s",
                "row_discovery_s",
                "product_bfs_s",
                "trace_rerun_s",
            }
            assert all(v >= 0 for v in record["phases"].values())

    def test_chunk_size_flag_accepted(self, capsys):
        assert main(
            ["safety", "2pl", "-k", "1", "--jobs", "2", "--chunk-size", "4",
             "--no-shard-product"]
        ) == 0

    def test_nonpositive_chunk_size_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["safety", "2pl", "-k", "1", "--jobs", "2",
                  "--chunk-size", "0"])
        assert exc.value.code == 2


class TestBatchCommand:
    @staticmethod
    def _write_spec(tmp_path, cells):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "defaults": {
                        "timeout_s": 120, "retries": 1, "backoff_s": 0
                    },
                    "cells": cells,
                }
            )
        )
        return str(path)

    def test_all_pass_exit_zero_and_reports(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path, [{"tm": "seq", "property": "ss", "n": 2, "k": 1}]
        )
        report_json = tmp_path / "report.json"
        report_md = tmp_path / "report.md"
        code = main(
            ["batch", spec, "--report-json", str(report_json),
             "--report-markdown", str(report_md)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| seq/ss/2x1 | pass |" in out
        import json

        report = json.loads(report_json.read_text())
        assert report["summary"]["pass"] == 1
        assert "| seq/ss/2x1 | pass |" in report_md.read_text()
        # the journal landed next to the spec
        assert (tmp_path / "campaign.jsonl").exists()

    def test_violation_exit_one(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            [{"tm": "modtl2", "property": "op", "n": 2, "k": 2}],
        )
        assert main(["batch", spec, "--quiet"]) == 1
        assert capsys.readouterr().out == ""  # --quiet suppresses all

    def test_error_cell_exit_three_campaign_continues(
        self, tmp_path, capsys
    ):
        spec = self._write_spec(
            tmp_path,
            [
                {"tm": "tl2", "property": "ss", "n": 2, "k": 1,
                 "inject": {"fail_attempts": 5}},
                {"tm": "seq", "property": "ss", "n": 2, "k": 1},
            ],
        )
        code = main(["batch", spec])
        assert code == 3
        out = capsys.readouterr().out
        assert "| tl2/ss/2x1 | error |" in out
        assert "| seq/ss/2x1 | pass |" in out  # ran despite the error

    def test_interrupted_journal_resumes_byte_identical(
        self, tmp_path, capsys
    ):
        from repro.campaign import load_spec, run_campaign

        spec_path = self._write_spec(
            tmp_path,
            [
                {"tm": "seq", "property": "ss", "n": 2, "k": 1},
                {"tm": "2pl", "property": "ss", "n": 2, "k": 1,
                 "inject": {"sigkill_attempts": 1}},
            ],
        )
        journal = tmp_path / "campaign.jsonl"
        # simulate an interruption after the first cell
        run_campaign(load_spec(spec_path), str(journal), limit=1)
        first = tmp_path / "resumed.json"
        assert main(
            ["batch", spec_path, "--quiet", "--report-json", str(first)]
        ) == 0
        second = tmp_path / "fresh.json"
        assert main(
            ["batch", spec_path, "--quiet", "--no-resume",
             "--report-json", str(second)]
        ) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_bad_spec_exit_two(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text('{"name": "x", "bogus": 1}')
        assert main(["batch", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_digest_mismatch_exit_two(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path, [{"tm": "seq", "property": "ss", "n": 2, "k": 1}]
        )
        assert main(["batch", spec, "--quiet"]) == 0
        other = self._write_spec(
            tmp_path, [{"tm": "seq", "property": "op", "n": 2, "k": 1}]
        )
        assert main(["batch", other, "--quiet"]) == 2
        assert "digest mismatch" in capsys.readouterr().err


class TestDoctorCommand:
    def test_clean_then_anomalous_then_fixed(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["safety", "seq", "-k", "1", "--cache-dir", cache_dir]
        ) in (0, 1)
        capsys.readouterr()
        assert main(["doctor", cache_dir]) == 0
        assert "ok" in capsys.readouterr().out

        import os

        victim = next(
            os.path.join(cache_dir, n)
            for n in sorted(os.listdir(cache_dir))
            if n.endswith(".pkl")
        )
        with open(victim, "wb") as fh:
            fh.write(b"garbage")
        assert main(["doctor", cache_dir]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert main(["doctor", cache_dir, "--fix"]) == 0
        capsys.readouterr()
        assert main(["doctor", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        assert main(
            ["doctor", str(tmp_path / "absent"), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["exists"] is False

    def test_missing_dir_exit_zero(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "nope")]) == 0


class TestJournalFaultExit:
    def test_journal_enospc_is_exit_three_with_diagnosis(
        self, tmp_path, capsys
    ):
        import json

        from repro.faultplane import installed

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "defaults": {"timeout_s": 120, "retries": 1,
                                 "backoff_s": 0},
                    "cells": [{"tm": "seq", "property": "ss",
                               "n": 2, "k": 1}],
                }
            )
        )
        schedule = {
            "name": "nospace", "seed": 0,
            "rules": [{"site": "journal.append", "fault": "enospc"}],
        }
        with installed(schedule):
            code = main(["batch", str(spec), "--quiet"])
        assert code == 3
        err = capsys.readouterr().err
        assert "journal append failed" in err
        assert "errno 28" in err  # ENOSPC, named in the one-liner
        assert "campaign.jsonl" in err  # and the journal path


class TestDoctorQuarantineCap:
    def test_max_quarantine_flag_threads_through(
        self, tmp_path, capsys
    ):
        import json
        import os

        for index in range(4):
            path = tmp_path / f"c{index}.pkl.bad"
            path.write_bytes(b"x")
            os.utime(path, (1_000_000 + index,) * 2)
        assert main(
            ["doctor", str(tmp_path), "--fix",
             "--max-quarantine", "1", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["quarantine"]["rotated"] == [
            "c0.pkl.bad", "c1.pkl.bad", "c2.pkl.bad"
        ]

    def test_negative_cap_is_a_usage_error(self, tmp_path, capsys):
        assert main(
            ["doctor", str(tmp_path), "--max-quarantine", "-1"]
        ) == 2
        assert "max-quarantine" in capsys.readouterr().err
