"""End-to-end reproduction of the paper's headline results.

One test per claim: Table 1 (example runs), Theorem 3 (spec equivalence,
via the (2,1) instance for speed — the (2,2) instance lives in
tests/spec/test_equivalence.py), Table 2 (safety), the TL2 ambiguity
(Section 5.4), Table 3 (liveness), and Theorem 6.
"""

import pytest

from repro import (
    DSTM,
    OP,
    SS,
    TL2,
    AggressiveManager,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    check_livelock_freedom,
    check_obstruction_freedom,
    check_safety,
    is_opaque,
    is_strictly_serializable,
    parse_word,
)
from repro.checking import check_safety_both
from repro.tm import language_contains


class TestTheorem4Safety:
    """"The sequential TM, two-phase locking TM, DSTM, and TL2 ensure
    opacity." — via (2,2) model checking + Theorem 1."""

    @pytest.mark.parametrize(
        "make",
        [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
        ids=["seq", "2PL", "dstm", "TL2"],
    )
    def test_opacity(self, make, det_spec_op_22):
        res = check_safety(make(2, 2), OP, spec=det_spec_op_22)
        assert res.holds

    @pytest.mark.parametrize(
        "make",
        [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
        ids=["seq", "2PL", "dstm", "TL2"],
    )
    def test_strict_serializability(self, make, det_spec_ss_22):
        res = check_safety(make(2, 2), SS, spec=det_spec_ss_22)
        assert res.holds


class TestTL2Ambiguity:
    """Section 5.4: rvalidate-then-chklock as separate atomic steps is
    unsafe; the checker produces a non-serializable counterexample."""

    def test_modified_tl2_polite_violates_both_properties(
        self, det_spec_ss_22, det_spec_op_22
    ):
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        ss, op = check_safety_both(
            tm, specs={SS: det_spec_ss_22, OP: det_spec_op_22}
        )
        assert not ss.holds and not op.holds
        for res in (ss, op):
            assert res.counterexample is not None
            assert not is_strictly_serializable(res.counterexample) or (
                res.prop is OP and not is_opaque(res.counterexample)
            )

    def test_papers_exact_counterexample_word(self):
        """w1 of Table 2 is producible by modified TL2 and violates
        strict serializability (hence opacity)."""
        w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        assert language_contains(tm, w1)
        assert not is_strictly_serializable(w1)
        assert not is_opaque(w1)
        # and the atomic-validate TL2 cannot produce it
        assert not language_contains(TL2(2, 2), w1)


class TestTheorem6Liveness:
    """"DSTM with the aggressive contention manager ensures obstruction
    freedom but does not ensure livelock freedom.  The sequential TM and
    two-phase locking TM do not ensure obstruction freedom.  TL2 with
    the polite contention manager does not ensure obstruction
    freedom." — via (2,1) model checking + Theorem 5."""

    def test_dstm_aggressive(self):
        tm = ManagedTM(DSTM(2, 1), AggressiveManager())
        assert check_obstruction_freedom(tm).holds
        assert not check_livelock_freedom(tm).holds

    def test_sequential(self):
        tm = SequentialTM(2, 1)
        assert not check_obstruction_freedom(tm).holds
        assert not check_livelock_freedom(tm).holds

    def test_two_phase_locking(self):
        tm = TwoPhaseLockingTM(2, 1)
        assert not check_obstruction_freedom(tm).holds

    def test_tl2_polite(self):
        tm = ManagedTM(TL2(2, 1), PoliteManager())
        assert not check_obstruction_freedom(tm).holds

    def test_counterexample_loops_match_table3(self):
        """seq, 2PL and TL2+polite all loop on the single statement a1."""
        for tm in [
            SequentialTM(2, 1),
            TwoPhaseLockingTM(2, 1),
            ManagedTM(TL2(2, 1), PoliteManager()),
        ]:
            res = check_obstruction_freedom(tm)
            assert [str(s) for s in res.loop] == ["abort1"], tm.name


class TestManagerIrrelevanceForSafety:
    """Section 4: L(Acm) ⊆ L(A), so safety verified without a manager
    covers all managed variants — spot-checked by verifying two managed
    TMs directly."""

    @pytest.mark.parametrize(
        "cm", [AggressiveManager(), PoliteManager()], ids=["aggr", "pol"]
    )
    def test_managed_dstm_still_safe(self, cm, det_spec_op_22):
        res = check_safety(
            ManagedTM(DSTM(2, 2), cm), OP, spec=det_spec_op_22
        )
        assert res.holds


class TestReductionPipelines:
    def test_full_safety_claim_seq(self):
        from repro import verify_tm_safety

        claim = verify_tm_safety(SequentialTM, OP, structural_max_len=4)
        assert claim.generalizes

    def test_full_liveness_claim_2pl(self):
        from repro import verify_tm_liveness

        claim = verify_tm_liveness(TwoPhaseLockingTM, structural_max_len=4)
        assert not claim.base_result_holds  # 2PL is not obstruction free
        assert claim.structural_ok  # but P5/P6 hold, so (2,1) is decisive
