"""The example scripts must keep running end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)


def run_example(name: str, timeout: int = 600) -> str:
    path = os.path.join(EXAMPLES, name)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=True,
    )
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "verdict: Y" in out

    def test_figures_walkthrough(self, tmp_path):
        out = run_example("figures_walkthrough.py")
        assert "commit rejected at 'c1'" in out
        # clean up the DOT artifacts the example writes next to itself
        for name in ("lasso.dot", "spec11.dot"):
            path = os.path.join(EXAMPLES, name)
            if os.path.exists(path):
                os.remove(path)

    def test_contention_managers(self):
        out = run_example("contention_managers.py")
        assert "dstm+aggr" in out and "TL2+pol" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_custom_tm_walkthrough(self):
        out = run_example("custom_tm_walkthrough.py")
        assert "the tool found the anomaly" in out
        assert out.count("Y,") >= 2

    def test_tl2_bug_hunt(self):
        out = run_example("tl2_bug_hunt.py")
        assert "1. TL2 with atomic validation" in out
        assert "N, [" in out

    def test_verify_paper_results(self):
        out = run_example("verify_paper_results.py")
        assert "Table 2" in out and "Table 3" in out
        assert "equivalent" in out
