"""Property-based end-to-end fuzzing: safe TMs only produce safe words.

Theorem 4 says seq/2PL/DSTM/TL2 ensure opacity.  These tests generate
random schedules and per-thread programs, simulate each TM, and assert
the produced word is opaque (reference checker) and accepted by both
specifications — closing the loop between the simulator, the explorer,
the specs and the ground truth.  The modified TL2 conversely must be
*able* to produce violations (witnessed elsewhere); here we check that
whatever it produces is at least always in its own explored language.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import OpacityMonitor
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.spec.compiled import (
    make_packed_step,
    pack_spec_state,
    statement_table,
    unpack_spec_state,
)
from repro.spec.det import (
    det_spec_accepts,
    det_step,
    initial_state as det_initial_state,
)
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    TL2,
    ModifiedTL2,
    SequentialTM,
    TwoPhaseLockingTM,
    build_safety_nfa,
)
from repro.tm.runs import ScheduleError, prefer_abort, program, simulate

PROGRAM_POOL = [
    "r1 c", "w1 c", "r1 w2 c", "w1 r2 c", "r1 r2 c", "w1 w2 c",
    "r2 w2 c", "w2 r1 w1 c", "r1 w1 c",
]


@st.composite
def scenarios(draw):
    p1 = program(draw(st.sampled_from(PROGRAM_POOL)))
    p2 = program(draw(st.sampled_from(PROGRAM_POOL)))
    schedule = draw(
        st.lists(st.integers(1, 2), min_size=1, max_size=16)
    )
    pessimistic = draw(st.booleans())
    return {1: p1, 2: p2}, schedule, pessimistic


def _simulate(tm, programs, schedule, pessimistic):
    kwargs = {"resolve": prefer_abort} if pessimistic else {}
    try:
        return simulate(tm, programs, schedule, **kwargs)
    except ScheduleError:
        return None  # schedule ran past a program; not a failure


@pytest.mark.parametrize(
    "make",
    [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
    ids=["seq", "2PL", "dstm", "TL2"],
)
class TestSafeTMsFuzz:
    @given(scenario=scenarios())
    @settings(max_examples=60, deadline=None)
    def test_simulated_words_are_opaque(self, make, scenario):
        programs, schedule, pessimistic = scenario
        run = _simulate(make(2, 2), programs, schedule, pessimistic)
        if run is None:
            return
        word = run.word()
        assert is_opaque(word)
        assert is_strictly_serializable(word)

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_simulated_words_accepted_by_specs(self, make, scenario):
        programs, schedule, pessimistic = scenario
        run = _simulate(make(2, 2), programs, schedule, pessimistic)
        if run is None:
            return
        word = run.word()
        assert det_spec_accepts(word, 2, 2, SS)
        assert det_spec_accepts(word, 2, 2, OP)

    @given(scenario=scenarios())
    @settings(max_examples=30, deadline=None)
    def test_online_monitor_stays_green(self, make, scenario):
        programs, schedule, pessimistic = scenario
        run = _simulate(make(2, 2), programs, schedule, pessimistic)
        if run is None:
            return
        monitor = OpacityMonitor(2, 2)
        assert monitor.feed_word(run.word())


@pytest.mark.parametrize("nk", [(2, 2), (3, 1)], ids=["n2k2", "n3k1"])
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
class TestPackedStepDifferential:
    """``make_packed_step`` agrees with rich ``det_step`` everywhere.

    The exhaustive differentials in ``tests/spec/test_spec_compiled.py``
    sweep whole reachable spaces at small shapes; this fuzz walks random
    *reachable* Algorithm 6 states (random statement sequences from the
    initial state, staying put on rejections so walks keep probing the
    frontier) and asserts, statement by statement, that the mask-algebra
    stepper and the rich stepper agree under the packing bijection —
    including on which statements reject.
    """

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_packed_step_matches_det_step_on_random_walks(
        self, nk, prop, data
    ):
        n, k = nk
        table = statement_table(n, k)
        step = make_packed_step(n, k, prop)
        state = det_initial_state(n)
        packed = pack_spec_state(state, n, k)
        assert packed == 0  # the initial state packs to the integer 0
        walk = data.draw(
            st.lists(
                st.integers(0, len(table) - 1), min_size=1, max_size=25
            )
        )
        for sym in walk:
            rich = det_step(state, table[sym], prop)
            got = step(packed, sym)
            if rich is None:
                assert got is None
                continue  # stay put: keep probing from a reachable state
            assert got == pack_spec_state(rich, n, k)
            assert unpack_spec_state(got, n, k) == rich
            state, packed = rich, got


class TestSimulatorExplorerAgreement:
    """Simulated words are always members of the explored language."""

    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_modified_tl2(self, scenario):
        programs, schedule, pessimistic = scenario
        tm = ModifiedTL2(2, 2)
        run = _simulate(tm, programs, schedule, pessimistic)
        if run is None:
            return
        nfa = build_safety_nfa(tm)
        assert nfa.accepts(run.word())
