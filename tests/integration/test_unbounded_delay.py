"""Section 5's unbounded-delay example ``wm``.

The paper motivates the specification construction with the parametrized
word ``wm = (r,v1)t1 · ((w,v1)t2 · c2)^m · (c1)``: its conflict graph has
m+1 vertices, so no conflict-graph-based online checker can be finite —
while the prohibited-set construction tracks it in constant space.  These
tests pin both halves of that claim.
"""

import pytest

from repro.core.monitor import StrictSerializabilityMonitor
from repro.core.properties import is_strictly_serializable
from repro.core.serialization_graph import build_graph
from repro.core.statements import commit, read, write
from repro.core.words import com
from repro.spec.det import det_spec_accepts, initial_state
from repro.spec import SS


def wm(m: int):
    """The paper's parametrized word with m committing writers."""
    word = [read(1, 1)]
    for _ in range(m):
        word.append(write(1, 2))
        word.append(commit(2))
    word.append(commit(1))
    return tuple(word)


class TestConflictGraphGrowsUnboundedly:
    @pytest.mark.parametrize("m", [1, 3, 7, 12])
    def test_vertex_count_is_m_plus_1(self, m):
        graph = build_graph(com(wm(m)))
        assert len(graph.txs) == m + 1


class TestWordsAreSafe:
    """t1's read precedes every commit, so t1 serializes first: wm is
    strictly serializable for every m."""

    @pytest.mark.parametrize("m", [0, 1, 4, 9])
    def test_reference(self, m):
        assert is_strictly_serializable(wm(m))

    @pytest.mark.parametrize("m", [0, 1, 4, 9])
    def test_spec(self, m):
        assert det_spec_accepts(wm(m), 2, 2, SS)


class TestSpecMemoryIsConstant:
    def test_state_reaches_a_fixpoint(self):
        """After the second round the specification state repeats —
        constant memory regardless of m, unlike the conflict graph."""
        from repro.spec.det import det_step

        state = initial_state(2)
        seen = []
        word = wm(12)
        for stmt in word[:-1]:  # exclude the final c1
            state = det_step(state, stmt, SS)
            assert state is not None
            seen.append(state)
        # the per-round states cycle with period 2 after the first round
        round_states = seen[1::2]
        assert len(set(round_states)) <= 2

    def test_monitor_handles_long_instances(self):
        monitor = StrictSerializabilityMonitor(2, 2)
        assert monitor.feed_word(wm(50))

    def test_opacity_differs_for_rereads(self):
        """Appending a second read of v1 to wm (m ≥ 1) breaks opacity —
        and the monitor pinpoints the exact statement."""
        from repro.core.monitor import OpacityMonitor

        word = wm(3)[:-1] + (read(1, 1),)
        monitor = OpacityMonitor(2, 2)
        monitor.feed_word(word)
        assert not monitor.ok
        assert monitor.violation_index == len(word) - 1
