"""Campaign spec validation and expansion."""

import json

import pytest

from repro.campaign import CampaignSpecError, load_spec, parse_spec


def _minimal(**overrides):
    data = {
        "name": "t",
        "matrix": {
            "tms": ["seq"],
            "properties": ["ss"],
            "sizes": [[2, 1]],
        },
    }
    data.update(overrides)
    return data


def test_matrix_expands_cross_product():
    spec = parse_spec(
        _minimal(
            matrix={
                "tms": ["seq", "2pl"],
                "properties": ["ss", "op"],
                "sizes": [[2, 1], [2, 2]],
            }
        )
    )
    assert len(spec.cells) == 8
    assert spec.cells[0]["id"] == "seq/ss/2x1"
    assert {cell["id"] for cell in spec.cells} == {
        f"{tm}/{prop}/{n}x{k}"
        for tm in ("seq", "2pl")
        for prop in ("ss", "op")
        for (n, k) in ((2, 1), (2, 2))
    }


def test_defaults_flow_into_cells_and_overrides_win():
    spec = parse_spec(
        {
            "name": "t",
            "defaults": {"timeout_s": 42, "retries": 5},
            "matrix": {
                "tms": ["seq"],
                "properties": ["ss"],
                "sizes": [[2, 1]],
            },
            "cells": [
                {"tm": "seq", "property": "ss", "n": 2, "k": 1,
                 "timeout_s": 7}
            ],
        }
    )
    # the explicit cell replaced its matrix twin
    assert len(spec.cells) == 1
    cell = spec.cells[0]
    assert cell["timeout_s"] == 7  # override wins
    assert cell["retries"] == 5  # default flows through


def test_manager_suffix_distinguishes_ids():
    spec = parse_spec(
        {
            "name": "t",
            "cells": [
                {"tm": "dstm", "property": "ss"},
                {"tm": "dstm", "property": "ss", "manager": "polite"},
            ],
        }
    )
    assert [cell["id"] for cell in spec.cells] == [
        "dstm/ss/2x2",
        "dstm/ss/2x2+polite",
    ]


def test_digest_is_stable_and_content_sensitive():
    a = parse_spec(_minimal())
    b = parse_spec(_minimal())
    c = parse_spec(_minimal(defaults={"retries": 9}))
    assert a.digest == b.digest
    assert a.digest != c.digest


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.__setitem__("bogus", 1), "unknown key"),
        (
            lambda d: d.__setitem__(
                "matrix", {"tms": ["nope"], "properties": ["ss"],
                           "sizes": [[2, 1]]}
            ),
            "unknown TM",
        ),
        (
            lambda d: d.__setitem__(
                "matrix", {"tms": ["seq"], "properties": ["zz"],
                           "sizes": [[2, 1]]}
            ),
            "unknown property",
        ),
        (
            lambda d: d.__setitem__("defaults", {"timeout_s": -1}),
            "timeout_s",
        ),
        (
            lambda d: d.__setitem__("defaults", {"retries": -1}),
            "retries",
        ),
        (
            lambda d: d.__setitem__(
                "defaults", {"inject": {"bogus": 1}}
            ),
            "inject",
        ),
        (
            lambda d: d.__setitem__(
                "defaults", {"cache_backend": "floppy"}
            ),
            "cache_backend",
        ),
        (
            lambda d: d.__setitem__("defaults", {"manager": "nope"}),
            "unknown manager",
        ),
    ],
)
def test_invalid_specs_are_rejected(mutate, match):
    data = _minimal()
    mutate(data)
    with pytest.raises(CampaignSpecError, match=match):
        parse_spec(data)


def test_duplicate_explicit_cells_rejected():
    with pytest.raises(CampaignSpecError, match="duplicate"):
        parse_spec(
            {
                "name": "t",
                "cells": [
                    {"tm": "seq", "property": "ss"},
                    {"tm": "seq", "property": "ss"},
                ],
            }
        )


def test_empty_spec_rejected():
    with pytest.raises(CampaignSpecError, match="no cells"):
        parse_spec({"name": "t"})


def test_spec_error_is_value_error_for_cli_exit_2():
    assert issubclass(CampaignSpecError, ValueError)


def test_load_spec_bad_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text("{not json")
    with pytest.raises(CampaignSpecError, match="not valid JSON"):
        load_spec(str(path))
    with pytest.raises(CampaignSpecError, match="cannot read"):
        load_spec(str(tmp_path / "absent.json"))


def test_load_spec_round_trip(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_minimal()))
    spec = load_spec(str(path))
    assert spec.cells[0]["id"] == "seq/ss/2x1"


def test_backoff_cap_defaults_and_overrides():
    spec = parse_spec(_minimal())
    assert spec.cells[0]["backoff_cap_s"] == 30.0
    spec = parse_spec(_minimal(defaults={"backoff_cap_s": 5}))
    assert spec.cells[0]["backoff_cap_s"] == 5


@pytest.mark.parametrize("bad", [0, -3, "fast", True])
def test_backoff_cap_must_be_a_positive_number(bad):
    with pytest.raises(CampaignSpecError, match="backoff_cap_s"):
        parse_spec(_minimal(defaults={"backoff_cap_s": bad}))
