"""Journal atomicity and resume semantics."""

import json

from repro.campaign import Journal


def test_header_then_cells_round_trip(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.start("camp", "d" * 64)
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    journal.append_cell({"type": "cell", "id": "b", "status": "fail"})
    header, entries = journal.load()
    assert header["digest"] == "d" * 64 and header["name"] == "camp"
    assert set(entries) == {"a", "b"}
    assert entries["b"]["status"] == "fail"


def test_start_truncates(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.start("camp", "x")
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    journal.start("camp", "y")
    header, entries = journal.load()
    assert header["digest"] == "y"
    assert entries == {}


def test_torn_tail_is_skipped(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "x")
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "cell", "id": "b", "sta')  # crash mid-append
    header, entries = journal.load()
    assert header is not None
    assert set(entries) == {"a"}  # the torn record is simply re-run


def test_last_record_wins_for_duplicate_ids(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.start("camp", "x")
    journal.append_cell({"type": "cell", "id": "a", "status": "error"})
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    _header, entries = journal.load()
    assert entries["a"]["status"] == "pass"


def test_missing_file_loads_empty(tmp_path):
    header, entries = Journal(str(tmp_path / "absent.jsonl")).load()
    assert header is None and entries == {}


def test_lines_are_valid_json_objects(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "x")
    journal.append_cell(
        {"type": "cell", "id": "a", "status": "pass", "faults": []}
    )
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert isinstance(json.loads(line), dict)


def test_injected_enospc_is_a_diagnosable_journal_error(tmp_path):
    from repro.campaign.journal import JournalError
    from repro.faultplane import installed

    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "x")
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    schedule = {
        "name": "nospace", "seed": 0,
        "rules": [{"site": "journal.append", "fault": "enospc"}],
    }
    with installed(schedule):
        import pytest

        with pytest.raises(JournalError) as exc:
            journal.append_cell(
                {"type": "cell", "id": "b", "status": "pass"}
            )
    # one-line diagnosis: the path and the errno are both in the text
    import errno

    assert str(path) in str(exc.value)
    assert exc.value.errno == errno.ENOSPC
    assert "errno" in str(exc.value)
    # everything already journaled stays loadable
    _header, entries = journal.load()
    assert set(entries) == {"a"}


def test_injected_torn_append_recovers_on_load(tmp_path):
    from repro.faultplane import installed

    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "x")
    schedule = {
        "name": "torn", "seed": 0,
        "rules": [{"site": "journal.append", "fault": "torn_write",
                   "match": "b", "keep_bytes": 9}],
    }
    with installed(schedule):
        journal.append_cell(
            {"type": "cell", "id": "a", "status": "pass"}
        )
        journal.append_cell(
            {"type": "cell", "id": "b", "status": "pass"}
        )  # torn: only a 9-byte prefix lands
    header, entries = journal.load()
    assert header is not None
    assert set(entries) == {"a"}  # the torn record is simply re-run


def test_injected_drop_fsync_keeps_the_write(tmp_path):
    from repro.faultplane import installed

    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "x")
    schedule = {
        "name": "nofsync", "seed": 0,
        "rules": [{"site": "journal.fsync", "fault": "drop_fsync"}],
    }
    with installed(schedule):
        journal.append_cell(
            {"type": "cell", "id": "a", "status": "pass"}
        )
    # the write itself landed; only durability was (silently) skipped
    _header, entries = journal.load()
    assert set(entries) == {"a"}
