"""Campaign-level fault tolerance and journal resume.

The acceptance pin: an interrupted-then-resumed campaign produces a
byte-identical report to an uninterrupted one, and injected faults
never abort the campaign or change verdicts on cells that complete.
"""

import pytest

from repro.campaign import (
    CampaignSpecError,
    Journal,
    build_report,
    parse_spec,
    report_exit_code,
    run_campaign,
)
from repro.campaign.report import (
    EXIT_ERRORS,
    EXIT_OK,
    EXIT_VIOLATIONS,
    render_json,
    render_markdown,
)
from repro.campaign.runner import CampaignRun


def _spec():
    return parse_spec(
        {
            "name": "faulty",
            "defaults": {
                "timeout_s": 120,
                "retries": 1,
                "backoff_s": 0,
            },
            "matrix": {
                "tms": ["seq", "2pl"],
                "properties": ["ss"],
                "sizes": [[2, 1]],
            },
            "cells": [
                # a worker SIGKILLed on its first attempt: retried
                {"tm": "dstm", "property": "ss", "n": 2, "k": 1,
                 "inject": {"sigkill_attempts": 1}},
                # every attempt raises: recorded as error, not raised
                {"tm": "tl2", "property": "ss", "n": 2, "k": 1,
                 "inject": {"fail_attempts": 5}},
            ],
        }
    )


def test_faults_never_abort_and_reports_resume_byte_identically(
    tmp_path,
):
    spec = _spec()
    journal = str(tmp_path / "campaign.jsonl")

    # Interrupt after two cells, then resume from the journal.
    partial = run_campaign(spec, journal, limit=2)
    assert not partial.complete
    assert len(partial.entries) == 2
    resumed = run_campaign(spec, journal)
    assert resumed.complete

    # Uninterrupted reference run on a fresh journal.
    reference = run_campaign(spec, str(tmp_path / "fresh.jsonl"))
    assert reference.complete

    left = render_json(build_report(resumed))
    right = render_json(build_report(reference))
    assert left == right  # byte-identical, faults and all
    assert render_markdown(build_report(resumed)) == render_markdown(
        build_report(reference)
    )

    report = build_report(resumed)
    by_id = {cell["id"]: cell for cell in report["cells"]}
    assert by_id["seq/ss/2x1"]["status"] == "pass"
    assert by_id["2pl/ss/2x1"]["status"] == "pass"
    crashed = by_id["dstm/ss/2x1"]
    assert crashed["status"] == "pass"  # verdict unharmed by the kill
    assert crashed["faults"][0]["class"] == "crash"
    assert by_id["tl2/ss/2x1"]["status"] == "error"
    assert report["summary"]["error"] == 1
    assert report_exit_code(report) == EXIT_ERRORS


def test_resume_skips_completed_cells(tmp_path):
    spec = _spec()
    journal_path = str(tmp_path / "campaign.jsonl")
    run_campaign(spec, journal_path)
    # a second run replays everything from the journal: nothing new
    rerun = run_campaign(spec, journal_path, limit=0)
    assert rerun.complete  # all four replayed despite limit=0


def test_digest_mismatch_refuses_resume(tmp_path):
    journal_path = str(tmp_path / "campaign.jsonl")
    Journal(journal_path).start("other", "not-this-digest")
    with pytest.raises(CampaignSpecError, match="digest mismatch"):
        run_campaign(_spec(), journal_path)
    # --no-resume truncates and proceeds
    run = run_campaign(_spec(), journal_path, resume=False, limit=0)
    assert not run.complete and run.entries == {}


def test_exit_codes_errors_dominate_violations():
    spec = parse_spec(
        {"name": "t", "cells": [{"tm": "seq", "property": "ss"}]}
    )
    cell_id = spec.cells[0]["id"]

    def code(status):
        entry = {"type": "cell", "id": cell_id, "status": status,
                 "result": None, "error": None, "attempts": 1,
                 "faults": []}
        return report_exit_code(
            build_report(CampaignRun(spec, {cell_id: entry}))
        )

    assert code("pass") == EXIT_OK
    assert code("fail") == EXIT_VIOLATIONS
    assert code("error") == EXIT_ERRORS
    assert code("timeout") == EXIT_ERRORS
    # a cell missing from the journal is an incomplete campaign
    empty = build_report(CampaignRun(spec, {}))
    assert report_exit_code(empty) == EXIT_ERRORS
    assert empty["summary"]["missing"] == 1
