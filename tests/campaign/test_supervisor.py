"""Supervised cell execution: isolation, faults, retries, degradation.

Cells here are tiny ((2,1) instances) so each subprocess round-trip
stays fast; the fork start method means children inherit the parent's
already-imported modules.
"""

import pytest

from repro.campaign.supervisor import run_cell
from repro.campaign.spec import parse_spec
from repro.checking import check_safety
from repro.spec import SS
from repro.tm import DSTM


def _cell(**overrides):
    data = {
        "name": "t",
        "cells": [
            dict(
                {"tm": "dstm", "property": "ss", "n": 2, "k": 1,
                 "retries": 1, "backoff_s": 0, "timeout_s": 120},
                **overrides,
            )
        ],
    }
    return parse_spec(data).cells[0]


def test_clean_cell_matches_direct_check():
    entry = run_cell(_cell())
    assert entry["status"] == "pass"
    assert entry["faults"] == []
    assert entry["attempts"] == 1
    ref = check_safety(DSTM(2, 1), SS)
    assert entry["result"] == {
        "tm_name": ref.tm_name,
        "holds": ref.holds,
        "counterexample": None,
        "tm_states": ref.tm_states,
        "spec_states": ref.spec_states,
        "product_states": ref.product_states,
    }


def test_violation_reports_fail_with_counterexample():
    entry = run_cell(
        _cell(tm="modtl2", property="op", n=2, k=2)
    )
    assert entry["status"] == "fail"
    ref = check_safety(
        __import__("repro.tm", fromlist=["ModifiedTL2"]).ModifiedTL2(2, 2),
        __import__("repro.spec", fromlist=["OP"]).OP,
    )
    from repro.core.statements import format_word

    assert entry["result"]["counterexample"] == format_word(
        ref.counterexample
    )
    assert entry["result"]["product_states"] == ref.product_states


def test_sigkilled_worker_is_retried_to_the_same_result():
    """A SIGKILLed subprocess surfaces as a crash fault; the retry
    completes with the exact result an uninjected run produces."""
    clean = run_cell(_cell())
    entry = run_cell(_cell(inject={"sigkill_attempts": 1}))
    assert entry["status"] == "pass"
    assert entry["attempts"] == 2
    [fault] = entry["faults"]
    assert fault["class"] == "crash"
    assert "-9" in fault["detail"]  # SIGKILL exit code
    assert entry["result"] == clean["result"]


def test_hang_hits_the_wall_clock():
    entry = run_cell(
        _cell(
            timeout_s=0.5,
            retries=0,
            inject={"hang_attempts": 1, "hang_s": 60},
        )
    )
    assert entry["status"] == "timeout"
    assert entry["attempts"] == 1
    [fault] = entry["faults"]
    assert fault["class"] == "timeout"


def test_retry_exhaustion_records_error_without_raising():
    entry = run_cell(
        _cell(retries=1, inject={"fail_attempts": 5})
    )
    assert entry["status"] == "error"
    assert entry["attempts"] == 2
    assert [fault["class"] for fault in entry["faults"]] == [
        "exception",
        "exception",
    ]
    assert "injected failure" in entry["error"]


def test_degradation_ladder_serial_then_cold(tmp_path):
    """Faults degrade jobs>1 -> serial -> cold before succeeding; the
    degraded result is still the canonical one (sharding and warm
    starts are optimization-only)."""
    clean = run_cell(_cell())
    entry = run_cell(
        _cell(
            jobs=2,
            cache_dir=str(tmp_path),
            retries=2,
            inject={"fail_attempts": 2},
        )
    )
    assert entry["status"] == "pass"
    assert entry["attempts"] == 3
    assert [fault["degraded"] for fault in entry["faults"]] == [
        "serial",
        "cold",
    ]
    assert entry["result"] == clean["result"]


def test_memory_cap_reports_memory_fault():
    entry = run_cell(
        _cell(
            memory_mb=512,
            retries=0,
            inject={"alloc_mb": 4096},
        )
    )
    assert entry["status"] == "error"
    [fault] = entry["faults"]
    assert fault["class"] == "memory"


def test_retry_delay_decorrelated_jitter():
    from repro.campaign.supervisor import BACKOFF_CAP_S, _retry_delay

    calls = []

    def rng(low, high):
        calls.append((low, high))
        return high  # worst case: always the top of the window

    # the window's top triples from the previous delay, never below base
    delay = _retry_delay(0.1, 0.1, rng)
    assert calls[-1] == (0.1, pytest.approx(0.3))
    delay = _retry_delay(0.1, delay, rng)
    assert calls[-1] == (0.1, pytest.approx(0.9))
    # and the cap bounds any single delay
    assert _retry_delay(0.1, 1e9, rng) == BACKOFF_CAP_S
    # a shrunken prev never drops the window below base
    assert _retry_delay(0.5, 0.0, rng) == pytest.approx(0.5)


def test_run_cell_reports_engine_stats():
    entry = run_cell(_cell())
    assert entry["stats"]["safety_rows"] > 0
    assert entry["stats"]["warm_safety_rows"] == 0


def test_run_cell_collects_warm_blobs_for_resident_store():
    from repro.cache import TieredCacheBackend

    store = TieredCacheBackend()
    cell = _cell(cache_dir="<resident>", cache_backend="memory")
    first = run_cell(cell, cache=store, collect_warm=True)
    assert first["status"] == "pass"
    assert first["warm"]  # the forked child shipped its tables back
    store.absorb_blobs(first["warm"])

    second = run_cell(cell, cache=store, collect_warm=True)
    assert second["result"] == first["result"]
    assert second["stats"]["safety_rows"] == 0  # resident tier hit
    assert second["stats"]["warm_safety_rows"] > 0
    assert second["warm"] == {}  # nothing new was built


def test_exception_detail_names_the_raise_site():
    """The fault detail carries ``file:line`` of the raising frame — an
    errored cell in a journal is triageable without re-running it."""
    entry = run_cell(_cell(retries=0, inject={"fail_attempts": 1}))
    assert entry["status"] == "error"
    assert "injected failure" in entry["error"]
    assert " @ supervisor.py:" in entry["error"]


def test_retry_seed_validated_at_the_spec_layer():
    from repro.campaign.spec import CampaignSpecError

    for good in (0, 7, None):
        assert _cell(retry_seed=good)["retry_seed"] == good
    for bad in (-1, 1.5, "x", True):
        with pytest.raises(CampaignSpecError, match="retry_seed"):
            _cell(retry_seed=bad)


def test_seeded_retry_schedule_is_deterministic():
    """``retry_seed`` routes the decorrelated jitter through a private
    PRNG: same seed, same delays; no seed falls back to the module
    RNG (and a seeded faulty cell still converges to the clean result)."""
    import random

    from repro.campaign.supervisor import _retry_delay

    def schedule(seed):
        rng = random.Random(seed).uniform
        delays, prev = [], 0.2
        for _ in range(4):
            prev = _retry_delay(0.2, prev, rng)
            delays.append(prev)
        return delays

    assert schedule(3) == schedule(3)
    assert schedule(3) != schedule(4)

    clean = run_cell(_cell())
    entry = run_cell(
        _cell(retry_seed=3, retries=1, inject={"fail_attempts": 1})
    )
    assert entry["status"] == "pass"
    assert entry["attempts"] == 2
    assert entry["result"] == clean["result"]


def test_run_cell_profile_policy_key():
    entry = run_cell(_cell(profile=True))
    assert entry["status"] == "pass"
    assert isinstance(entry["profile"], dict) and entry["profile"]
    # a non-profiled cell carries no profile key at all
    assert "profile" not in run_cell(_cell())


def test_retry_delay_honors_a_cell_level_cap():
    from repro.campaign.supervisor import BACKOFF_CAP_S, _retry_delay

    def rng(_low, high):
        return high

    # a cell's backoff_cap_s threads through as cap_s and binds first
    assert _retry_delay(0.1, 1e9, rng, cap_s=5.0) == 5.0
    assert _retry_delay(0.1, 1e9, rng, cap_s=90.0) == 90.0
    # the default cap is the historical 30s ceiling
    assert _retry_delay(0.1, 1e9, rng) == BACKOFF_CAP_S


def test_backoff_cap_surfaces_in_the_report(tmp_path):
    from repro.campaign import parse_spec, run_campaign
    from repro.campaign.report import build_report

    spec = parse_spec(
        {
            "name": "cap",
            "defaults": {"timeout_s": 120, "retries": 1,
                         "backoff_s": 0, "backoff_cap_s": 7.5},
            "cells": [
                {"tm": "seq", "property": "ss", "n": 2, "k": 1}
            ],
        }
    )
    run = run_campaign(spec, str(tmp_path / "j.jsonl"))
    report = build_report(run)
    assert report["cells"][0]["backoff_cap_s"] == 7.5
