"""The ``repro chaos`` sweeper: matrix, determinism, recovery proofs.

The slow end-to-end sweeps live behind the same real-subprocess style
as ``tests/integration``; the fast half pins the schedule family and
the trial-record byte-determinism the acceptance criteria demand.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign.chaos import (
    BATCH_SPEC,
    CHAOS_USAGE,
    PLANE_SCENARIOS,
    PLANES,
    build_trials,
    chaos_exit_code,
    default_schedule,
    parse_seed_range,
    render_chaos,
    schedule_planes,
)
from repro.campaign.journal import Journal
from repro.faultplane import schedule_digest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "src",
)


def _chaos(tmp_path, *argv):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop("REPRO_FAULT_SCHEDULE", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos"] + list(argv),
        cwd=str(tmp_path), env=env, timeout=900,
        capture_output=True, text=True,
    )


# ----------------------------------------------------------------------
# The schedule family and trial matrix (fast)
# ----------------------------------------------------------------------


def test_family_digests_are_pinned():
    # The family is part of the reproducibility contract: a schedule
    # regenerated from (plane, seed) must be the one a past report
    # named.  These digests only move when the family definition does.
    digests = {
        plane: schedule_digest(default_schedule(plane, 3))
        for plane in PLANES
    }
    assert digests == {
        "storage": "21eb183d2312cca85800693ccd288796"
                   "6a454837eee8d8183961300d6e9a3530",
        "journal": "ac248f4b2e3febc57b4cd5cee56888f7"
                   "2b359e33e25d3407e89167bcf38dcb36",
        "wire": "674081e5a0c8b012afcfa1f183011fce"
                "c70e7c84384dfff6569881c89875c45f",
    }


def test_seed_moves_every_plane_schedule():
    for plane in PLANES:
        assert (
            schedule_digest(default_schedule(plane, 0))
            != schedule_digest(default_schedule(plane, 1))
        )


def test_trial_matrix_covers_the_plane_scenario_map():
    trials = build_trials(seed_range=(0, 2))
    shape = {(plane, scenario) for plane, scenario, _ in trials}
    assert shape == {
        (plane, scenario)
        for plane in PLANES
        for scenario in PLANE_SCENARIOS[plane]
    }
    assert len(trials) == 2 * sum(
        len(PLANE_SCENARIOS[plane]) for plane in PLANES
    )


def test_explicit_schedule_selects_its_planes():
    schedule = default_schedule("journal", 5)
    assert schedule_planes(schedule) == ["journal"]
    trials = build_trials(seed_range=(0, 1), schedule=schedule)
    assert [(p, s) for p, s, _ in trials] == [("journal", "batch")]


def test_parse_seed_range():
    assert parse_seed_range("0:8") == (0, 8)
    assert parse_seed_range("3:5") == (3, 5)
    for bad in ("8", "5:5", "5:3", "-1:2", "a:b"):
        with pytest.raises(ValueError):
            parse_seed_range(bad)


def test_exit_code_and_render_rank_violations_first():
    report = {
        "trials": [
            {"schedule": {"name": "bad"}, "scenario": "batch",
             "plane": "journal", "seed": 1,
             "exits": {"baseline": 1, "faulted": 0},
             "violations": ["verdicts_identical"]},
            {"schedule": {"name": "good"}, "scenario": "batch",
             "plane": "storage", "seed": 0,
             "exits": {"baseline": 1, "faulted": 1},
             "violations": []},
        ],
        "summary": {"trials": 2, "violations": 1,
                    "by_invariant": {"verdicts_identical": 1}},
    }
    assert chaos_exit_code(report) == 1
    text = render_chaos(report)
    assert text.index("bad") < text.index("good")
    assert "verdicts_identical" in text


def test_cli_rejects_bad_inputs(tmp_path):
    assert _chaos(tmp_path, "--seed-range", "5:3").returncode == (
        CHAOS_USAGE
    )
    schedule = tmp_path / "s.json"
    schedule.write_text("{broken")
    assert _chaos(
        tmp_path, "--schedule", str(schedule)
    ).returncode == CHAOS_USAGE


# ----------------------------------------------------------------------
# Enumerated journal truncation: every torn tail recovers
# ----------------------------------------------------------------------


def test_every_tail_truncation_point_recovers(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(str(path))
    journal.start("camp", "d" * 64)
    journal.append_cell({"type": "cell", "id": "a", "status": "pass"})
    journal.append_cell({"type": "cell", "id": "b", "status": "fail"})
    intact = path.read_bytes()
    tail_start = intact.rindex(b"\n", 0, len(intact) - 1) + 1
    # Cut the final record at every byte offset, including cutting it
    # away entirely: the tail is skipped, never misread, and the
    # surviving prefix still parses.
    for cut in range(tail_start, len(intact)):
        path.write_bytes(intact[:cut])
        header, entries = Journal(str(path)).load()
        assert header is not None and header["digest"] == "d" * 64
        if cut == len(intact) - 1:
            # Only the newline is missing: the record itself is whole
            # and parseable, so it legitimately survives.
            assert set(entries) == {"a", "b"}, f"cut at byte {cut}"
        else:
            assert set(entries) == {"a"}, f"cut at byte {cut}"
    path.write_bytes(intact)
    _header, entries = Journal(str(path)).load()
    assert set(entries) == {"a", "b"}


# ----------------------------------------------------------------------
# Real sweeps (subprocess-heavy, integration pace)
# ----------------------------------------------------------------------


def _strip_env(record):
    return {
        key: record[key]
        for key in ("plane", "scenario", "seed", "schedule",
                    "schedule_digest", "exits", "invariants",
                    "violations", "observed", "report_sha256")
    }


def test_replay_by_seed_is_byte_identical(tmp_path):
    """The acceptance pin: the same (plane, seed) trial, swept twice
    in fresh workdirs, produces byte-identical trial records."""
    records = []
    for round_name in ("one", "two"):
        workdir = tmp_path / round_name
        report_path = tmp_path / f"{round_name}.json"
        proc = _chaos(
            tmp_path, "--seed-range", "1:2", "--plane", "journal",
            "--workdir", str(workdir),
            "--report-json", str(report_path), "--quiet",
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(report_path.read_text())
        assert report["summary"] == {
            "trials": 1, "violations": 0, "by_invariant": {},
        }
        records.append(
            json.dumps(_strip_env(report["trials"][0]),
                       sort_keys=True)
        )
    assert records[0] == records[1]


def test_storage_faults_uphold_invariants_and_surface(tmp_path):
    report_path = tmp_path / "report.json"
    proc = _chaos(
        tmp_path, "--seed-range", "0:1", "--plane", "storage",
        "--scenario", "hunt", "--workdir", str(tmp_path / "w"),
        "--report-json", str(report_path), "--quiet",
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(report_path.read_text())
    (trial,) = report["trials"]
    assert trial["violations"] == []
    assert trial["invariants"]["doctor_clean"]
    # Storage-plane observability: the injected torn writes left
    # quarantined corpses the doctor saw (and fixed).
    assert trial["observed"]["doctor"]["summary"]


def test_journal_faults_are_observable_in_the_report(tmp_path):
    report_path = tmp_path / "report.json"
    proc = _chaos(
        tmp_path, "--seed-range", "0:1", "--plane", "journal",
        "--workdir", str(tmp_path / "w"),
        "--report-json", str(report_path), "--quiet",
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(report_path.read_text())
    (trial,) = report["trials"]
    assert trial["violations"] == []
    assert trial["invariants"]["faults_observable"]
    assert sum(trial["observed"]["faultplane"].values()) > 0
    # The baseline report and the faulted run's verdicts agree.
    shas = trial["report_sha256"]
    assert shas["faulted"] == shas["baseline"]


def test_batch_spec_has_a_known_violation():
    # The chaos batch scenario deliberately includes a failing cell:
    # a sweep that only ever checks passing verdicts would miss a
    # fault that flips fail -> pass.
    tms = {cell["tm"] for cell in BATCH_SPEC["cells"]}
    assert "modtl2" in tms
