"""Hunt specs, the verdict layer and a small end-to-end hunt."""

import pytest

from repro.campaign import (
    CampaignRun,
    CampaignSpecError,
    build_hunt_report,
    default_hunt_spec,
    hunt_exit_code,
    load_hunt_spec,
    parse_hunt_spec,
    render_hunt_json,
    render_hunt_markdown,
    run_hunt,
)
from repro.campaign.hunt import HUNT_POLICY_DEFAULTS, tm_expectation
from repro.campaign.spec import expand_cell
from repro.tm import default_mutants


def _tiny(**overrides):
    data = {
        "name": "t",
        "mutants": ["tl2/drop-rvalidate", "tl2/shuffle-lock-order"],
        "controls": [],
        "properties": ["ss"],
        "sizes": [[2, 2]],
    }
    data.update(overrides)
    return data


def _synthetic_run(spec, outcomes):
    """A CampaignRun with hand-written journal entries: ``outcomes``
    maps cell id -> ("pass"|"fail"|"error", counterexample_or_None);
    cells absent from the map stay missing."""
    entries = {}
    for cell in spec.campaign.cells:
        if cell["id"] not in outcomes:
            continue
        status, word = outcomes[cell["id"]]
        entries[cell["id"]] = {
            "type": "cell",
            "id": cell["id"],
            "status": status,
            "result": (
                {"holds": False, "counterexample": word}
                if status == "fail"
                else {"holds": True, "counterexample": None}
                if status == "pass"
                else None
            ),
            "error": "boom" if status == "error" else None,
            "attempts": 1,
            "faults": [],
        }
    return CampaignRun(spec.campaign, entries)


class TestSpec:
    def test_default_hunt_is_the_full_roster(self):
        spec = default_hunt_spec()
        roster = default_mutants()
        assert spec.tms == roster + ["tl2", "norec"]
        assert spec.properties == ["ss", "op"]
        assert spec.sizes == [[2, 2]]
        assert len(spec.campaign.cells) == 2 * (len(roster) + 2)
        # seeded bugs and true negatives both present
        assert spec.expectations["tl2/split-validation"] is True
        assert spec.expectations["norec"] is False

    def test_hunt_policy_defaults_reach_the_cells(self):
        spec = parse_hunt_spec(_tiny())
        for cell in spec.campaign.cells:
            assert cell["timeout_s"] == HUNT_POLICY_DEFAULTS["timeout_s"]
            assert cell["retry_seed"] == HUNT_POLICY_DEFAULTS["retry_seed"]

    def test_globs_expand_over_the_roster(self):
        spec = parse_hunt_spec(_tiny(mutants=["2pl/*"]))
        expected = [m for m in default_mutants() if m.startswith("2pl/")]
        assert [tm for tm in spec.tms if "/" in tm] == expected

    def test_exact_off_roster_replicates_pass_through(self):
        spec = parse_hunt_spec(
            _tiny(mutants=["tl2/skip-version-bump@seed9"])
        )
        assert "tl2/skip-version-bump@seed9" in spec.tms

    def test_mutant_lists_deduplicate_in_order(self):
        spec = parse_hunt_spec(
            _tiny(
                mutants=[
                    "tl2/drop-rvalidate",
                    "tl2/drop-*",
                    "tl2/drop-chklock",
                ]
            )
        )
        assert [tm for tm in spec.tms if "/" in tm] == [
            "tl2/drop-rvalidate",
            "tl2/drop-chklock",
        ]

    def test_digest_is_the_campaign_digest(self):
        a = parse_hunt_spec(_tiny())
        b = parse_hunt_spec(_tiny())
        c = parse_hunt_spec(_tiny(properties=["op"]))
        assert a.digest == b.digest
        assert a.digest != c.digest

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.__setitem__("bogus", 1), "unknown key"),
            (lambda d: d.__setitem__("mutants", []), "non-empty list"),
            (
                lambda d: d.__setitem__("mutants", ["dstm/no-such-*"]),
                "matches nothing",
            ),
            (
                # a malformed seed suffix is not an id, so it degrades
                # to a glob — which then matches nothing
                lambda d: d.__setitem__("mutants", ["tl2/drop@seedx"]),
                "matches nothing",
            ),
            (
                lambda d: d.__setitem__(
                    "controls", ["tl2/drop-rvalidate"]
                ),
                "plain TM names",
            ),
            (
                lambda d: d.__setitem__("defaults", {"timeout_s": -1}),
                "timeout_s",
            ),
            (
                lambda d: d.__setitem__("defaults", {"retry_seed": -1}),
                "retry_seed",
            ),
        ],
    )
    def test_invalid_hunt_specs_rejected(self, mutate, match):
        data = _tiny()
        mutate(data)
        with pytest.raises(CampaignSpecError, match=match):
            parse_hunt_spec(data)

    def test_unknown_control_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown control TM"):
            parse_hunt_spec(_tiny(controls=["nope"]))

    def test_load_hunt_spec_bad_json(self, tmp_path):
        path = tmp_path / "hunt.json"
        path.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="not valid JSON"):
            load_hunt_spec(str(path))

    def test_tm_expectation(self):
        assert tm_expectation("modtl2") is True
        assert tm_expectation("tl2") is False
        assert tm_expectation("2pl/no-rlock") is True
        with pytest.raises(CampaignSpecError, match="unknown"):
            tm_expectation("nope")

    def test_expand_cell_accepts_mutant_ids(self):
        """The serve daemon's request validator — mutant acceptance here
        is what makes hunts daemon-runnable."""
        cell = expand_cell(
            {"tm": "tl2/drop-rvalidate", "property": "ss"}
        )
        assert cell["id"] == "tl2/drop-rvalidate/ss/2x2"
        with pytest.raises(CampaignSpecError, match="unknown TM"):
            expand_cell({"tm": "tl2/no-such-op", "property": "ss"})


class TestVerdicts:
    def test_caught_and_correct_rank_and_exit(self):
        spec = parse_hunt_spec(_tiny())
        run = _synthetic_run(
            spec,
            {
                "tl2/drop-rvalidate/ss/2x2": (
                    "fail", "(r,1)1, (w,1)1, (w,1)2, c2, c1",
                ),
                "tl2/shuffle-lock-order/ss/2x2": ("pass", None),
            },
        )
        report = build_hunt_report(spec, run)
        assert report["summary"] == {
            "caught": 1, "escaped": 0, "false-kill": 0,
            "correct": 1, "incomplete": 0,
        }
        caught = report["mutants"][0]
        assert caught["tm"] == "tl2/drop-rvalidate"
        assert caught["verdict"] == "caught"
        assert caught["counterexample_len"] == 5
        assert hunt_exit_code(report) == 1

    def test_escaped_is_a_hard_failure(self):
        spec = parse_hunt_spec(_tiny())
        run = _synthetic_run(
            spec,
            {
                "tl2/drop-rvalidate/ss/2x2": ("pass", None),
                "tl2/shuffle-lock-order/ss/2x2": ("pass", None),
            },
        )
        report = build_hunt_report(spec, run)
        assert report["mutants"][0]["verdict"] == "escaped"
        assert hunt_exit_code(report) == 3
        assert "**ESCAPED**" in render_hunt_markdown(report)

    def test_false_kill_is_a_hard_failure(self):
        spec = parse_hunt_spec(_tiny())
        run = _synthetic_run(
            spec,
            {
                "tl2/drop-rvalidate/ss/2x2": ("fail", "(w,1)1, c1"),
                "tl2/shuffle-lock-order/ss/2x2": ("fail", "(w,1)1, c1"),
            },
        )
        report = build_hunt_report(spec, run)
        assert report["mutants"][0]["verdict"] == "false-kill"
        assert hunt_exit_code(report) == 3
        assert "**FALSE KILL**" in render_hunt_markdown(report)

    def test_missing_and_errored_cells_mean_incomplete(self):
        spec = parse_hunt_spec(_tiny())
        run = _synthetic_run(
            spec,
            {"tl2/shuffle-lock-order/ss/2x2": ("error", None)},
        )
        report = build_hunt_report(spec, run)
        verdicts = {m["tm"]: m["verdict"] for m in report["mutants"]}
        assert verdicts == {
            "tl2/drop-rvalidate": "incomplete",
            "tl2/shuffle-lock-order": "incomplete",
        }
        assert hunt_exit_code(report) == 3
        assert "triage" in render_hunt_markdown(report)

    def test_all_quiet_true_negatives_exit_zero(self):
        spec = parse_hunt_spec(_tiny(mutants=["tl2/shuffle-lock-order"]))
        run = _synthetic_run(
            spec, {"tl2/shuffle-lock-order/ss/2x2": ("pass", None)}
        )
        report = build_hunt_report(spec, run)
        assert hunt_exit_code(report) == 0

    def test_minimal_counterexample_across_cells(self):
        spec = parse_hunt_spec(
            _tiny(
                mutants=["tl2/drop-rvalidate"], properties=["ss", "op"]
            )
        )
        run = _synthetic_run(
            spec,
            {
                "tl2/drop-rvalidate/ss/2x2": (
                    "fail", "(r,1)1, (w,1)1, (w,1)2, c2, c1",
                ),
                "tl2/drop-rvalidate/op/2x2": (
                    "fail", "(r,1)1, (w,1)2, c2, (r,1)1",
                ),
            },
        )
        (mutant,) = build_hunt_report(spec, run)["mutants"]
        assert mutant["counterexample_cell"] == "tl2/drop-rvalidate/op/2x2"
        assert mutant["counterexample_len"] == 4
        assert len(mutant["killed_by"]) == 2


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def small_hunt(self):
        return parse_hunt_spec(
            {
                "name": "smoke",
                "mutants": ["2pl/no-rlock"],
                "controls": ["norec"],
                "properties": ["ss"],
                "sizes": [[2, 2]],
            }
        )

    def test_real_hunt_catches_the_seeded_bug(self, small_hunt, tmp_path):
        journal = str(tmp_path / "hunt.jsonl")
        run = run_hunt(small_hunt, journal)
        assert run.complete
        report = build_hunt_report(small_hunt, run)
        assert hunt_exit_code(report) == 1
        verdicts = {m["tm"]: m["verdict"] for m in report["mutants"]}
        assert verdicts == {"2pl/no-rlock": "caught", "norec": "correct"}
        caught = report["mutants"][0]
        assert caught["counterexample"]
        assert caught["counterexample_len"] == 5

    def test_interrupted_hunt_resumes_byte_identically(
        self, small_hunt, tmp_path
    ):
        straight = build_hunt_report(
            small_hunt,
            run_hunt(small_hunt, str(tmp_path / "a.jsonl")),
        )
        journal = str(tmp_path / "b.jsonl")
        partial = run_hunt(small_hunt, journal, limit=1)
        assert not partial.complete
        resumed = build_hunt_report(
            small_hunt, run_hunt(small_hunt, journal)
        )
        assert render_hunt_json(resumed) == render_hunt_json(straight)
        assert render_hunt_markdown(resumed) == render_hunt_markdown(
            straight
        )

    def test_journal_digest_mismatch_refuses_resume(
        self, small_hunt, tmp_path
    ):
        journal = str(tmp_path / "c.jsonl")
        run_hunt(small_hunt, journal, limit=1)
        other = parse_hunt_spec(
            {"name": "smoke", "mutants": ["2pl/no-rlock"],
             "controls": [], "properties": ["ss"]}
        )
        with pytest.raises(CampaignSpecError, match="digest mismatch"):
            run_hunt(other, journal)
