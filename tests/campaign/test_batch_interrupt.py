"""SIGTERM/^C drain for ``repro batch``: interrupted cells journal and
resume, and the CLI exits with the 128+signal convention."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import (
    CampaignInterrupted,
    Journal,
    parse_spec,
    run_campaign,
)


def _spec_data(**cell_overrides):
    cell = {"tm": "seq", "property": "ss", "n": 2, "k": 1,
            "timeout_s": 120, "retries": 1, "backoff_s": 0}
    cell.update(cell_overrides)
    return {
        "name": "drain",
        "cells": [
            cell,
            {"tm": "2pl", "property": "ss", "n": 2, "k": 1,
             "timeout_s": 120, "retries": 1, "backoff_s": 0},
        ],
    }


def test_interrupt_mid_cell_journals_and_resumes(tmp_path, monkeypatch):
    spec = parse_spec(_spec_data())
    journal_path = str(tmp_path / "campaign.jsonl")
    real_run_cell = runner_mod.run_cell
    calls = []

    def interrupting_run_cell(cell, **kwargs):
        calls.append(cell["id"])
        if len(calls) == 2:
            raise CampaignInterrupted("signal 15")
        return real_run_cell(cell, **kwargs)

    monkeypatch.setattr(runner_mod, "run_cell", interrupting_run_cell)
    with pytest.raises(CampaignInterrupted):
        run_campaign(spec, journal_path)

    _header, entries = Journal(journal_path).load()
    assert entries["seq/ss/2x1"]["status"] == "pass"
    interrupted = entries["2pl/ss/2x1"]
    assert interrupted["status"] == "interrupted"
    assert interrupted["result"] is None
    assert interrupted["error"] == "interrupted mid-cell"

    # resume re-runs exactly the interrupted cell (the completed one
    # is replayed from the journal, not executed again)
    monkeypatch.setattr(runner_mod, "run_cell", real_run_cell)
    resumed = run_campaign(spec, journal_path)
    assert resumed.complete
    assert resumed.entries["2pl/ss/2x1"]["status"] == "pass"
    # the journal's last record for the cell wins over the interrupt
    _header, entries = Journal(journal_path).load()
    assert entries["2pl/ss/2x1"]["status"] == "pass"


def test_keyboard_interrupt_takes_the_same_path(tmp_path, monkeypatch):
    spec = parse_spec(_spec_data())
    journal_path = str(tmp_path / "campaign.jsonl")

    def interrupting_run_cell(cell, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "run_cell", interrupting_run_cell)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(spec, journal_path)
    _header, entries = Journal(journal_path).load()
    assert entries["seq/ss/2x1"]["status"] == "interrupted"


@pytest.mark.slow
def test_batch_sigterm_exits_143_and_journal_resumes(tmp_path):
    # The first cell hangs its first attempt for longer than the test:
    # SIGTERM lands mid-cell, the CLI must journal it as interrupted
    # and exit 143; the resumed batch retries the cell (the hang is
    # first-attempt-only) and completes.
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(_spec_data(
        inject={"hang_attempts": 1, "hang_s": 120},
        timeout_s=5, retries=1, backoff_s=0,
    )))
    journal_path = tmp_path / "campaign.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "batch", str(spec_path),
         "--journal", str(journal_path), "--quiet"],
        env=env,
    )
    # wait for the journal header: the campaign is then mid-cell-1
    deadline = time.monotonic() + 30
    while not journal_path.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    time.sleep(1.0)  # let the hanging attempt start
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 143

    _header, entries = Journal(str(journal_path)).load()
    assert entries["seq/ss/2x1"]["status"] == "interrupted"

    # resume: attempt 1 hangs again but times out at 5s, attempt 2
    # passes — the journal converges to a complete campaign
    code = subprocess.call(
        [sys.executable, "-m", "repro", "batch", str(spec_path),
         "--journal", str(journal_path), "--quiet"],
        env=env,
    )
    assert code == 0
    _header, entries = Journal(str(journal_path)).load()
    assert entries["seq/ss/2x1"]["status"] == "pass"
    assert entries["2pl/ss/2x1"]["status"] == "pass"
