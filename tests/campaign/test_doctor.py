"""The ``repro doctor`` orchestration over one cache directory."""

import os
from array import array

from repro.cache import DiskCacheBackend, MmapCacheBackend
from repro.campaign.doctor import (
    DOCTOR_ANOMALOUS,
    DOCTOR_OK,
    render_doctor,
    run_doctor,
)

PAYLOAD = {"offsets": array("i", [0, 1, 2]), "num_states": 3}


def _seed(tmp_path):
    disk = DiskCacheBackend(str(tmp_path))
    mmap_backend = MmapCacheBackend(str(tmp_path))
    assert disk.save(("k", 1), PAYLOAD)
    assert mmap_backend.save(("k", 2), PAYLOAD)
    return disk, mmap_backend


def test_healthy_directory_scans_clean(tmp_path):
    _seed(tmp_path)
    code, report = run_doctor(str(tmp_path))
    assert code == DOCTOR_OK
    assert report["summary"] == {"ok": 2}
    assert {entry["backend"] for entry in report["entries"]} == {
        "disk", "mmap"
    }


def test_missing_directory_is_vacuously_healthy(tmp_path):
    code, report = run_doctor(str(tmp_path / "absent"))
    assert code == DOCTOR_OK
    assert not report["exists"]


def test_anomalies_then_fix_then_clean(tmp_path):
    disk, mmap_backend = _seed(tmp_path)
    with open(disk.path_for(("k", 1)), "wb") as fh:
        fh.write(b"garbage")
    with open(mmap_backend.path_for(("k", 2)), "r+b") as fh:
        fh.truncate(12)  # shorter than magic+length: corrupt
    (tmp_path / ".tmp-dead.pkl").write_bytes(b"")

    code, report = run_doctor(str(tmp_path))
    assert code == DOCTOR_ANOMALOUS
    assert report["summary"]["corrupt"] == 2
    assert report["summary"]["orphan"] == 1
    # read-only by default
    assert os.path.exists(disk.path_for(("k", 1)))

    code, report = run_doctor(str(tmp_path), fix=True)
    assert code == DOCTOR_OK
    assert {
        entry["action"]
        for entry in report["entries"]
        if entry["status"] in ("corrupt", "orphan")
    } == {"quarantined", "removed"}

    code, report = run_doctor(str(tmp_path))
    assert code == DOCTOR_OK  # quarantined files are not anomalies
    assert report["summary"]["quarantined"] == 2
    text = render_doctor(report)
    assert "quarantined" in text and "summary:" in text


def test_scan_anomalies_surface_in_the_errors_section(tmp_path):
    disk, _mmap_backend = _seed(tmp_path)
    with open(disk.path_for(("k", 1)), "wb") as fh:
        fh.write(b"garbage")
    _code, report = run_doctor(str(tmp_path))
    assert report["errors"]["disk"]["corrupt"] == 1
    assert "errors[disk]: 1 corrupt" in render_doctor(report)
    # the mmap side saw no anomalies: no errors line for it
    assert "errors[mmap]" not in render_doctor(report)


def test_render_covers_empty_and_missing(tmp_path):
    code, report = run_doctor(str(tmp_path))
    assert code == DOCTOR_OK
    assert "empty cache directory" in render_doctor(report)
    _code, report = run_doctor(str(tmp_path / "absent"))
    assert "does not exist" in render_doctor(report)


def _quarantine_corpses(tmp_path, count):
    """Seed ``count`` already-quarantined .bad files, oldest first."""
    names = []
    for index in range(count):
        name = f"corpse-{index:02d}.pkl.bad"
        path = tmp_path / name
        path.write_bytes(b"x" * (index + 1))
        stamp = 1_000_000 + index
        os.utime(path, (stamp, stamp))
        names.append(name)
    return names


def test_quarantine_section_reports_count_and_bytes(tmp_path):
    _seed(tmp_path)
    _quarantine_corpses(tmp_path, 3)
    code, report = run_doctor(str(tmp_path))
    assert code == DOCTOR_OK  # corpses are not anomalies
    assert report["quarantine"]["count"] == 3
    assert report["quarantine"]["bytes"] == 1 + 2 + 3
    assert "quarantine: 3 file(s), 6B" in render_doctor(report)


def test_read_only_scan_never_rotates(tmp_path):
    names = _quarantine_corpses(tmp_path, 5)
    code, report = run_doctor(str(tmp_path), max_quarantine=2)
    assert code == DOCTOR_OK
    assert report["quarantine"]["rotated"] == []
    assert all((tmp_path / name).exists() for name in names)


def test_fix_rotates_oldest_first_down_to_the_cap(tmp_path):
    names = _quarantine_corpses(tmp_path, 5)
    code, report = run_doctor(
        str(tmp_path), fix=True, max_quarantine=2
    )
    assert code == DOCTOR_OK
    assert report["quarantine"]["rotated"] == names[:3]
    assert not any((tmp_path / name).exists() for name in names[:3])
    assert all((tmp_path / name).exists() for name in names[3:])
    assert "rotated 3" in render_doctor(report)
    # a rescan is now inside the cap
    _code, report = run_doctor(str(tmp_path), max_quarantine=2)
    assert report["quarantine"]["count"] == 2


def test_fix_under_the_cap_rotates_nothing(tmp_path):
    names = _quarantine_corpses(tmp_path, 2)
    _code, report = run_doctor(
        str(tmp_path), fix=True, max_quarantine=16
    )
    assert report["quarantine"]["rotated"] == []
    assert all((tmp_path / name).exists() for name in names)
