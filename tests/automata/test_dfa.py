"""Tests for the partial-DFA substrate."""

import pytest

from repro.automata.dfa import DFA


def mod3_dfa():
    """Counts 'a's mod 3; 'b' only allowed at state 0."""
    return DFA(
        initial=0,
        delta={
            0: {"a": 1, "b": 0},
            1: {"a": 2},
            2: {"a": 0},
        },
    )


class TestBasics:
    def test_states(self):
        assert mod3_dfa().states() == {0, 1, 2}

    def test_alphabet(self):
        assert mod3_dfa().alphabet() == {"a", "b"}

    def test_step(self):
        d = mod3_dfa()
        assert d.step(0, "a") == 1
        assert d.step(1, "b") is None

    def test_run(self):
        d = mod3_dfa()
        assert d.run(("a", "a", "a")) == 0
        assert d.run(("a", "b")) is None

    def test_accepts_partiality(self):
        d = mod3_dfa()
        assert d.accepts(("b", "a", "a", "a", "b"))
        assert not d.accepts(("a", "b"))


class TestFromStep:
    def test_build(self):
        d = DFA.from_step(0, lambda q: [("a", (q + 1) % 4)])
        assert d.num_states == 4

    def test_duplicate_symbol_conflict_raises(self):
        def bad_step(q):
            return [("a", 1), ("a", 2)]

        with pytest.raises(ValueError):
            DFA.from_step(0, bad_step)

    def test_duplicate_symbol_same_target_ok(self):
        d = DFA.from_step(0, lambda q: [("a", 1), ("a", 1)] if q == 0 else [])
        assert d.accepts(("a",))

    def test_max_states_guard(self):
        with pytest.raises(RuntimeError):
            DFA.from_step(0, lambda q: [("a", q + 1)], max_states=5)


class TestCompact:
    def test_language_preserved(self):
        d = DFA(initial="x", delta={"x": {"a": "y"}, "y": {"b": "x"}})
        compacted, mapping = d.compact()
        assert compacted.initial == 0
        for w in [(), ("a",), ("a", "b"), ("b",)]:
            assert d.accepts(w) == compacted.accepts(w)


class TestMinimize:
    def test_merges_equivalent_states(self):
        # states 1 and 2 have identical futures
        d = DFA(
            initial=0,
            delta={
                0: {"a": 1, "b": 2},
                1: {"c": 3},
                2: {"c": 3},
                3: {},
            },
        )
        mini = d.minimize()
        assert mini.num_states == 3

    def test_language_preserved(self):
        d = DFA(
            initial=0,
            delta={
                0: {"a": 1, "b": 2},
                1: {"c": 3},
                2: {"c": 3},
                3: {},
            },
        )
        mini = d.minimize()
        for w in [(), ("a",), ("a", "c"), ("b", "c"), ("a", "a"), ("c",)]:
            assert d.accepts(w) == mini.accepts(w)

    def test_already_minimal(self):
        d = mod3_dfa()
        assert d.minimize().num_states == 3

    def test_accepting_partition(self):
        d = DFA(
            initial=0,
            delta={0: {"a": 1}, 1: {"a": 0}},
            accepting=frozenset([1]),
        )
        mini = d.minimize()
        assert mini.num_states == 2
        assert not mini.accepts(())
        assert mini.accepts(("a",))


class TestToNfa:
    def test_language_preserved(self):
        d = mod3_dfa()
        nfa = d.to_nfa()
        for w in [(), ("a",), ("a", "b"), ("a", "a", "a", "b")]:
            assert d.accepts(w) == nfa.accepts(w)
