"""The interned fast path: equivalence with the naive checkers.

The interned kernel must agree with the pre-interning reference
implementations *exactly* — verdict, counterexample bytes, and the
discovered-pair count — on arbitrary safety NFAs.  These tests drive
both paths over randomized automata and over handcrafted edge cases
(ε-cycles, unreachable states, empty languages).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.antichain import (
    _check_inclusion_antichain_naive,
    check_inclusion_antichain,
)
from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.inclusion import (
    _check_inclusion_in_dfa_naive,
    check_inclusion_in_dfa,
)
from repro.automata.interned import InternedDFA, InternedNFA, intern_dfa, intern_nfa
from repro.automata.nfa import EPSILON, NFA


@st.composite
def random_safety_nfas(draw, symbols="ab", max_states=5, with_eps=True):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    labels = list(symbols) + ([EPSILON] if with_eps else [])
    for q in range(n_states):
        out = {}
        for sym in labels:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = targets
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


def results_equal(r1, r2):
    return (
        r1.holds == r2.holds
        and r1.counterexample == r2.counterexample
        and r1.product_states == r2.product_states
    )


class TestInternedNFAStructure:
    def test_dense_indices_cover_all_states(self):
        nfa = NFA(
            frozenset([0]),
            {
                0: {"a": frozenset([1]), EPSILON: frozenset([2])},
                1: {"b": frozenset([0, 2])},
                2: {},
                77: {"a": frozenset([0])},  # unreachable straggler
            },
        )
        ia = InternedNFA(nfa)
        assert ia.n == nfa.num_states
        assert sorted(ia.index_of.values()) == list(range(ia.n))
        assert all(ia.index_of[ia.state_of[i]] == i for i in range(ia.n))

    def test_eclosure_matches_nfa(self):
        nfa = NFA(
            frozenset([0]),
            {
                0: {EPSILON: frozenset([1])},
                1: {EPSILON: frozenset([0, 2]), "a": frozenset([1])},
                2: {},
            },
        )
        ia = InternedNFA(nfa)
        for q in (0, 1, 2):
            expected = nfa.eclosure([q])
            got = {ia.state_of[i] for i in ia.eclosure_set(ia.index_of[q])}
            assert got == expected

    def test_closed_post_matches_macro_step(self):
        nfa = NFA(
            frozenset([0]),
            {
                0: {"a": frozenset([1]), EPSILON: frozenset([1])},
                1: {"a": frozenset([2]), EPSILON: frozenset([2])},
                2: {"b": frozenset([0])},
            },
        )
        ia = InternedNFA(nfa)
        macro = frozenset(ia.index_of[q] for q in (0, 1))
        got = ia.to_states(ia.closed_post(macro, "a"))
        assert got == nfa.eclosure(nfa.post([0, 1], "a"))

    def test_instance_caching(self):
        nfa = NFA(frozenset([0]), {0: {"a": frozenset([0])}})
        assert intern_nfa(nfa) is intern_nfa(nfa)

    def test_dfa_instance_caching(self):
        dfa = DFA(initial=0, delta={0: {"a": 0}})
        assert intern_dfa(dfa) is intern_dfa(dfa)

    def test_interned_dfa_structure(self):
        dfa = DFA(
            initial="s", delta={"s": {"a": "t"}, "t": {}, "u": {"a": "s"}}
        )
        idfa = InternedDFA(dfa)
        assert idfa.n == 3
        assert idfa.initial == 0
        assert idfa.state_of[0] == "s"
        # the unreachable straggler's row still resolves its target
        u = idfa.index_of["u"]
        assert idfa.delta[u]["a"] == 0

    def test_interned_dfa_covers_successor_only_stragglers(self):
        """delta must have a row for every index, including unreachable
        states that appear only as successors of other stragglers."""
        dfa = DFA(initial="A", delta={"A": {"a": "B"}, "C": {"a": "D"}})
        idfa = InternedDFA(dfa)
        assert idfa.n == 4
        assert len(idfa.delta) == 4
        assert idfa.delta[idfa.index_of["D"]] == {}
        assert idfa.delta[idfa.index_of["C"]] == {"a": idfa.index_of["D"]}


class TestRandomizedEquivalence:
    @given(random_safety_nfas(), random_safety_nfas())
    @settings(max_examples=120, deadline=None)
    def test_product_interned_equals_naive(self, a, b):
        d = determinize(b)
        assert results_equal(
            check_inclusion_in_dfa(a, d),
            _check_inclusion_in_dfa_naive(a, d),
        )

    @given(random_safety_nfas(), random_safety_nfas())
    @settings(max_examples=120, deadline=None)
    def test_antichain_interned_equals_naive(self, a, b):
        assert results_equal(
            check_inclusion_antichain(a, b),
            _check_inclusion_antichain_naive(a, b),
        )

    @given(random_safety_nfas(), random_safety_nfas())
    @settings(max_examples=80, deadline=None)
    def test_naive_product_and_antichain_agree(self, a, b):
        """Satellite regression: the two checkers (naive and interned,
        product and antichain) all agree on the verdict."""
        product = check_inclusion_in_dfa(a, determinize(b))
        antichain = check_inclusion_antichain(a, b)
        assert product.holds == antichain.holds


class TestEdgeCases:
    def test_empty_language_nfa(self):
        a = NFA(frozenset([0]), {0: {}})
        d = DFA(initial=0, delta={0: {}})
        assert results_equal(
            check_inclusion_in_dfa(a, d),
            _check_inclusion_in_dfa_naive(a, d),
        )

    def test_epsilon_cycle(self):
        a = NFA(
            frozenset([0]),
            {
                0: {EPSILON: frozenset([1])},
                1: {EPSILON: frozenset([0]), "a": frozenset([0])},
            },
        )
        d = DFA(initial=0, delta={0: {"b": 0}})
        assert results_equal(
            check_inclusion_in_dfa(a, d),
            _check_inclusion_in_dfa_naive(a, d),
        )

    def test_multiple_initial_states(self):
        a = NFA(
            frozenset([3, 1, 2]),
            {
                1: {"a": frozenset([1])},
                2: {"b": frozenset([2])},
                3: {},
            },
        )
        d = DFA(initial=0, delta={0: {"a": 0}})
        assert results_equal(
            check_inclusion_in_dfa(a, d),
            _check_inclusion_in_dfa_naive(a, d),
        )
        b = NFA(frozenset([0]), {0: {"a": frozenset([0])}})
        assert results_equal(
            check_inclusion_antichain(a, b),
            _check_inclusion_antichain_naive(a, b),
        )

    def test_guard_still_raised_on_accepting_semantics(self):
        a = NFA(frozenset([0]), {0: {}}, accepting=frozenset([0]))
        with pytest.raises(ValueError):
            check_inclusion_in_dfa(a, DFA(initial=0, delta={0: {}}))
