"""Tests for SCCs, shortest paths, closed walks, and lasso assembly."""

from repro.automata.graph import (
    adjacency,
    build_lasso,
    closed_walk_through,
    shortest_path,
    tarjan_sccs,
)


def ring_edges(n, label="x"):
    return [(i, f"{label}{i}", (i + 1) % n) for i in range(n)]


class TestTarjan:
    def test_single_cycle(self):
        edges = ring_edges(4)
        sccs = tarjan_sccs(range(4), edges)
        assert {frozenset(s) for s in sccs} == {frozenset(range(4))}

    def test_dag_gives_singletons(self):
        edges = [(0, "a", 1), (1, "b", 2)]
        sccs = tarjan_sccs(range(3), edges)
        assert all(len(s) == 1 for s in sccs)

    def test_two_components(self):
        edges = ring_edges(3) + [(2, "bridge", 3)] + [
            (3, "p", 4),
            (4, "q", 3),
        ]
        sccs = {frozenset(s) for s in tarjan_sccs(range(5), edges)}
        assert frozenset([0, 1, 2]) in sccs
        assert frozenset([3, 4]) in sccs

    def test_self_loop(self):
        sccs = tarjan_sccs([0], [(0, "l", 0)])
        assert sccs == [{0}]

    def test_reverse_topological_order(self):
        edges = [(0, "a", 1)]
        sccs = tarjan_sccs([0, 1], edges)
        # sinks first
        assert sccs.index({1}) < sccs.index({0})

    def test_large_chain_no_recursion_error(self):
        n = 5000
        edges = [(i, "e", i + 1) for i in range(n)]
        sccs = tarjan_sccs(range(n + 1), edges)
        assert len(sccs) == n + 1


class TestShortestPath:
    def test_trivial(self):
        assert shortest_path(adjacency([]), 0, 0) == []

    def test_simple(self):
        adj = adjacency([(0, "a", 1), (1, "b", 2), (0, "c", 2)])
        path = shortest_path(adj, 0, 2)
        assert [e[1] for e in path] == ["c"]

    def test_unreachable(self):
        adj = adjacency([(0, "a", 1)])
        assert shortest_path(adj, 1, 0) is None

    def test_allowed_restriction(self):
        adj = adjacency([(0, "a", 1), (1, "b", 2), (0, "c", 2)])
        path = shortest_path(adj, 0, 2, allowed={0, 1, 2})
        assert path is not None
        path2 = shortest_path(adj, 0, 1, allowed={0, 2})
        assert path2 is None


class TestClosedWalk:
    def test_through_one_edge(self):
        edges = ring_edges(3)
        walk = closed_walk_through(set(range(3)), edges, [edges[1]])
        assert walk is not None
        assert walk[0] == edges[1]
        assert walk[-1][2] == walk[0][0]  # closes

    def test_through_two_edges(self):
        edges = ring_edges(4)
        required = [edges[0], edges[2]]
        walk = closed_walk_through(set(range(4)), edges, required)
        assert walk is not None
        assert all(e in walk for e in required)

    def test_empty_required(self):
        assert closed_walk_through({0}, [(0, "l", 0)], []) is None

    def test_self_loop_walk(self):
        e = (0, "loop", 0)
        walk = closed_walk_through({0}, [e], [e])
        assert walk == [e]


class TestLasso:
    def test_stem_reaches_cycle(self):
        edges = [(0, "in", 1)] + [(1, "a", 2), (2, "b", 1)]
        cycle = [(1, "a", 2), (2, "b", 1)]
        lasso = build_lasso(edges, 0, cycle)
        assert lasso is not None
        assert lasso.stem_labels() == ("in",)
        assert lasso.cycle_labels() == ("a", "b")

    def test_cycle_at_initial(self):
        edges = [(0, "a", 0)]
        lasso = build_lasso(edges, 0, [(0, "a", 0)])
        assert lasso.stem == ()

    def test_unreachable_cycle(self):
        edges = [(1, "a", 2), (2, "b", 1)]
        assert build_lasso(edges, 0, [(1, "a", 2), (2, "b", 1)]) is None

    def test_empty_cycle(self):
        assert build_lasso([], 0, []) is None
