"""Subset construction: agreement with NFA acceptance, incl. random NFAs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.nfa import EPSILON, NFA


def simple_nfa():
    return NFA(
        initial=frozenset([0]),
        delta={
            0: {"a": frozenset([0, 1]), EPSILON: frozenset([2])},
            1: {"b": frozenset([2])},
            2: {"a": frozenset([2])},
        },
    )


class TestDeterminize:
    def test_agrees_on_small_words(self):
        nfa = simple_nfa()
        dfa = determinize(nfa)
        from itertools import product

        for L in range(0, 5):
            for w in product("ab", repeat=L):
                assert nfa.accepts(w) == dfa.accepts(w), w

    def test_result_is_deterministic(self):
        dfa = determinize(simple_nfa())
        for q, out in dfa.delta.items():
            assert len(out) == len(set(out))

    def test_initial_is_eclosure(self):
        nfa = simple_nfa()
        dfa = determinize(nfa)
        assert dfa.initial == nfa.eclosure(nfa.initial)

    def test_max_states_guard(self):
        # growing macrostates: {0}, {0,1}, {0,1,2}, ... on every 'a'
        n = 12
        delta = {
            i: {"a": frozenset([0, min(i + 1, n - 1)])} for i in range(n)
        }
        nfa = NFA(initial=frozenset([0]), delta=delta)
        with pytest.raises(RuntimeError):
            determinize(nfa, max_states=3)

    def test_accepting_propagation(self):
        nfa = NFA(
            frozenset([0]),
            {0: {"a": frozenset([1])}, 1: {}},
            accepting=frozenset([1]),
        )
        dfa = determinize(nfa)
        assert not dfa.accepts(())
        assert dfa.accepts(("a",))


@st.composite
def random_nfas(draw):
    n_states = draw(st.integers(1, 5))
    symbols = ["a", "b"]
    delta = {}
    for q in range(n_states):
        out = {}
        for sym in symbols + [EPSILON]:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = frozenset(targets)
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


class TestRandomAgreement:
    @given(random_nfas(), st.lists(st.sampled_from("ab"), max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_determinize_preserves_language(self, nfa, word):
        dfa = determinize(nfa)
        assert nfa.accepts(tuple(word)) == dfa.accepts(tuple(word))
