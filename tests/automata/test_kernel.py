"""The lazy product kernels: streamed exploration vs. materialization.

``lazy_product_dfa`` must agree exactly (verdict, counterexample,
discovered pairs) with materializing the NFA first and running the
product checker; ``lazy_product_oracle`` must additionally agree when
the DFA side is streamed through its transition function.  Counterexample
minimality is checked by exhaustive enumeration of shorter words.
"""

from itertools import product as iproduct

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.inclusion import check_inclusion_in_dfa
from repro.automata.kernel import lazy_product_dfa, lazy_product_oracle
from repro.automata.nfa import EPSILON, NFA


@st.composite
def random_safety_nfas(draw, symbols="ab", max_states=5, with_eps=True):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    labels = list(symbols) + ([EPSILON] if with_eps else [])
    for q in range(n_states):
        out = {}
        for sym in labels:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = targets
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


@st.composite
def random_safety_dfas(draw, symbols="ab", max_states=4):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    for q in range(n_states):
        out = {}
        for sym in symbols:
            target = draw(
                st.one_of(st.none(), st.integers(0, n_states - 1))
            )
            if target is not None:
                out[sym] = target
        delta[q] = out
    return DFA(initial=0, delta=delta)


def step_of(nfa):
    """A from_step-style step function replaying ``nfa``'s transitions."""

    def step(q):
        for symbol, succs in nfa.delta.get(q, {}).items():
            for s in succs:
                yield symbol, s

    return step


class TestLazyProductDFA:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_materialized(self, a, d):
        holds, cex, pairs, seen = lazy_product_dfa(a.initial, step_of(a), d)
        ref = check_inclusion_in_dfa(a, d)
        assert holds == ref.holds
        assert cex == ref.counterexample
        assert pairs == ref.product_states

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_states_seen_is_full_reachable_set_when_holds(self, a, d):
        holds, _, _, seen = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            reachable = a.restrict_to_reachable().num_states
            assert seen == reachable

    @given(
        random_safety_nfas(max_states=4, with_eps=False),
        random_safety_dfas(max_states=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_counterexample_is_minimal(self, a, d):
        """No strictly shorter word of L(A) escapes L(B).

        (ε-free automata only: with ε-moves the BFS minimizes total
        steps, which is minimal-up-to-ε in observable symbols.)
        """
        holds, cex, _, _ = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            return
        assert a.accepts(cex) and not d.accepts(cex)
        alphabet = sorted(a.alphabet(), key=repr)
        for length in range(len(cex)):
            for word in iproduct(alphabet, repeat=length):
                assert not (a.accepts(word) and not d.accepts(word)), (
                    f"shorter violation {word} than reported {cex}"
                )

    def test_max_states_guard(self):
        def step(q):
            yield "a", q + 1

        d = DFA(initial=0, delta={0: {"a": 0}})
        with pytest.raises(RuntimeError) as exc:
            lazy_product_dfa([0], step, d, max_states=10)
        assert "10" in str(exc.value)

    def test_violation_found_before_budget_exhausted(self):
        """The lazy product can report a violation without exploring the
        full (here: unbounded) state space."""

        def step(q):
            yield "a", q + 1  # infinite chain

        d = DFA(initial=0, delta={0: {"a": 1}, 1: {}})
        holds, cex, _, seen = lazy_product_dfa(
            [0], step, d, max_states=100
        )
        assert not holds
        assert cex == ("a", "a")
        assert seen <= 100


class TestLazyProductOracle:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_lazy_dfa(self, a, d):
        r_dfa = lazy_product_dfa(a.initial, step_of(a), d)
        r_orc = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert r_orc[:4] == r_dfa[:4]

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_spec_states_seen_bounded_by_dfa(self, a, d):
        holds, _, _, _, spec_seen = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert spec_seen <= d.num_states

    def test_oracle_never_queried_outside_product(self):
        """The spec oracle is only consulted for symbols the streamed
        automaton actually emits from reachable product states."""
        queries = []

        def spec_step(state, symbol):
            queries.append((state, symbol))
            return state if symbol == "a" else None

        def step(q):
            if q == 0:
                yield "a", 1

        holds, _, _, _, _ = lazy_product_oracle([0], step, "S", spec_step)
        assert holds
        assert queries == [("S", "a")]


class TestProductDfaPacked:
    """``product_dfa_packed`` (all-int DFA-sided product) against
    ``product_dfa_direct`` on hand-built row tables.

    The left automaton is given twice over the same packed states: once
    as symbol-object rows for the direct checker, once as symbol-id rows
    (bare ints for singleton groups, ``-1`` for ε) for the packed one;
    the right side once as a DFA over the symbol objects, once as an
    int-indexed row table.  Everything observable must match, with the
    packed counterexample decoding to the direct one through the symbol
    table.
    """

    SYMBOLS = ("a", "b")
    NODE_SPAN = 8  # a power of two covering packed left states 0..4

    def _left(self, rows_ids):
        """Symbol-object rows derived from id rows (1-tuples for the
        direct checker's successor groups)."""
        def row_fn(q):
            return tuple(
                (
                    None if sym < 0 else self.SYMBOLS[sym],
                    (succs,) if type(succs) is int else succs,
                )
                for sym, succs in rows_ids.get(q, ())
            )
        return row_fn

    def _spec(self, spec_rows):
        """A DFA equivalent to the int row table."""
        from repro.automata.dfa import DFA

        delta = {
            i: {
                self.SYMBOLS[s]: succ
                for s, succ in enumerate(row)
                if succ >= 0
            }
            for i, row in enumerate(spec_rows)
        }
        return DFA(initial=0, delta=delta)

    def _compare(self, rows_ids, spec_rows, max_states=None):
        from repro.automata.kernel import product_dfa_direct, product_dfa_packed

        row_ids_fn = lambda q: rows_ids.get(q, ())
        direct = product_dfa_direct(
            self._left(rows_ids), [0], self._spec(spec_rows),
            max_states=max_states,
        )
        packed = product_dfa_packed(
            row_ids_fn, [0], spec_rows,
            node_span=self.NODE_SPAN, max_states=max_states,
        )
        holds, word_ids, pairs, states = packed
        word = (
            None
            if word_ids is None
            else tuple(self.SYMBOLS[s] for s in word_ids)
        )
        assert (holds, word, pairs, states) == direct
        return packed

    def test_holding_product(self):
        rows = {
            0: ((0, 1), (-1, 2)),          # a -> 1, eps -> 2
            1: ((1, (0, 2)),),             # b -> {0, 2}
            2: ((0, 2),),                  # a self-loop
        }
        spec = ((1, 0), (1, 1))            # total delta: never violates
        got = self._compare(rows, spec)
        assert got[0] is True

    def test_violation_and_counterexample(self):
        rows = {
            0: ((0, 1),),                  # a -> 1
            1: ((-1, 2),),                 # eps -> 2
            2: ((1, 3),),                  # b -> 3 ... but spec rejects b
        }
        spec = ((1, -1), (0, -1))          # b always rejects
        got = self._compare(rows, spec)
        assert got[0] is False and got[1] == (0, 1)  # word "a b"

    def test_max_states_guard_message_identical(self):
        import pytest as _pytest
        from repro.automata.kernel import (
            product_dfa_direct,
            product_dfa_packed,
        )

        rows = {q: ((0, q + 1),) for q in range(5)}
        spec = ((0, -1),)  # a self-loop on the only spec state
        with _pytest.raises(RuntimeError) as direct:
            product_dfa_direct(
                self._left(rows), [0], self._spec(spec), max_states=3
            )
        with _pytest.raises(RuntimeError) as packed:
            product_dfa_packed(
                lambda q: rows.get(q, ()), [0], spec,
                node_span=self.NODE_SPAN, max_states=3,
            )
        assert str(direct.value) == str(packed.value)
