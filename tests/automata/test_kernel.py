"""The lazy product kernels: streamed exploration vs. materialization.

``lazy_product_dfa`` must agree exactly (verdict, counterexample,
discovered pairs) with materializing the NFA first and running the
product checker; ``lazy_product_oracle`` must additionally agree when
the DFA side is streamed through its transition function.  Counterexample
minimality is checked by exhaustive enumeration of shorter words.
"""

from itertools import product as iproduct

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.inclusion import check_inclusion_in_dfa
from repro.automata.kernel import lazy_product_dfa, lazy_product_oracle
from repro.automata.nfa import EPSILON, NFA


@st.composite
def random_safety_nfas(draw, symbols="ab", max_states=5, with_eps=True):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    labels = list(symbols) + ([EPSILON] if with_eps else [])
    for q in range(n_states):
        out = {}
        for sym in labels:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = targets
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


@st.composite
def random_safety_dfas(draw, symbols="ab", max_states=4):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    for q in range(n_states):
        out = {}
        for sym in symbols:
            target = draw(
                st.one_of(st.none(), st.integers(0, n_states - 1))
            )
            if target is not None:
                out[sym] = target
        delta[q] = out
    return DFA(initial=0, delta=delta)


def step_of(nfa):
    """A from_step-style step function replaying ``nfa``'s transitions."""

    def step(q):
        for symbol, succs in nfa.delta.get(q, {}).items():
            for s in succs:
                yield symbol, s

    return step


class TestLazyProductDFA:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_materialized(self, a, d):
        holds, cex, pairs, seen = lazy_product_dfa(a.initial, step_of(a), d)
        ref = check_inclusion_in_dfa(a, d)
        assert holds == ref.holds
        assert cex == ref.counterexample
        assert pairs == ref.product_states

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_states_seen_is_full_reachable_set_when_holds(self, a, d):
        holds, _, _, seen = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            reachable = a.restrict_to_reachable().num_states
            assert seen == reachable

    @given(
        random_safety_nfas(max_states=4, with_eps=False),
        random_safety_dfas(max_states=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_counterexample_is_minimal(self, a, d):
        """No strictly shorter word of L(A) escapes L(B).

        (ε-free automata only: with ε-moves the BFS minimizes total
        steps, which is minimal-up-to-ε in observable symbols.)
        """
        holds, cex, _, _ = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            return
        assert a.accepts(cex) and not d.accepts(cex)
        alphabet = sorted(a.alphabet(), key=repr)
        for length in range(len(cex)):
            for word in iproduct(alphabet, repeat=length):
                assert not (a.accepts(word) and not d.accepts(word)), (
                    f"shorter violation {word} than reported {cex}"
                )

    def test_max_states_guard(self):
        def step(q):
            yield "a", q + 1

        d = DFA(initial=0, delta={0: {"a": 0}})
        with pytest.raises(RuntimeError) as exc:
            lazy_product_dfa([0], step, d, max_states=10)
        assert "10" in str(exc.value)

    def test_violation_found_before_budget_exhausted(self):
        """The lazy product can report a violation without exploring the
        full (here: unbounded) state space."""

        def step(q):
            yield "a", q + 1  # infinite chain

        d = DFA(initial=0, delta={0: {"a": 1}, 1: {}})
        holds, cex, _, seen = lazy_product_dfa(
            [0], step, d, max_states=100
        )
        assert not holds
        assert cex == ("a", "a")
        assert seen <= 100


class TestLazyProductOracle:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_lazy_dfa(self, a, d):
        r_dfa = lazy_product_dfa(a.initial, step_of(a), d)
        r_orc = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert r_orc[:4] == r_dfa[:4]

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_spec_states_seen_bounded_by_dfa(self, a, d):
        holds, _, _, _, spec_seen = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert spec_seen <= d.num_states

    def test_oracle_never_queried_outside_product(self):
        """The spec oracle is only consulted for symbols the streamed
        automaton actually emits from reachable product states."""
        queries = []

        def spec_step(state, symbol):
            queries.append((state, symbol))
            return state if symbol == "a" else None

        def step(q):
            if q == 0:
                yield "a", 1

        holds, _, _, _, _ = lazy_product_oracle([0], step, "S", spec_step)
        assert holds
        assert queries == [("S", "a")]
