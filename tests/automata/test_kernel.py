"""The lazy product kernels: streamed exploration vs. materialization.

``lazy_product_dfa`` must agree exactly (verdict, counterexample,
discovered pairs) with materializing the NFA first and running the
product checker; ``lazy_product_oracle`` must additionally agree when
the DFA side is streamed through its transition function.  Counterexample
minimality is checked by exhaustive enumeration of shorter words.
"""

from itertools import product as iproduct

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.inclusion import check_inclusion_in_dfa
from repro.automata.kernel import lazy_product_dfa, lazy_product_oracle
from repro.automata.nfa import EPSILON, NFA


@st.composite
def random_safety_nfas(draw, symbols="ab", max_states=5, with_eps=True):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    labels = list(symbols) + ([EPSILON] if with_eps else [])
    for q in range(n_states):
        out = {}
        for sym in labels:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = targets
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


@st.composite
def random_safety_dfas(draw, symbols="ab", max_states=4):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    for q in range(n_states):
        out = {}
        for sym in symbols:
            target = draw(
                st.one_of(st.none(), st.integers(0, n_states - 1))
            )
            if target is not None:
                out[sym] = target
        delta[q] = out
    return DFA(initial=0, delta=delta)


def step_of(nfa):
    """A from_step-style step function replaying ``nfa``'s transitions."""

    def step(q):
        for symbol, succs in nfa.delta.get(q, {}).items():
            for s in succs:
                yield symbol, s

    return step


class TestLazyProductDFA:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_materialized(self, a, d):
        holds, cex, pairs, seen = lazy_product_dfa(a.initial, step_of(a), d)
        ref = check_inclusion_in_dfa(a, d)
        assert holds == ref.holds
        assert cex == ref.counterexample
        assert pairs == ref.product_states

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_states_seen_is_full_reachable_set_when_holds(self, a, d):
        holds, _, _, seen = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            reachable = a.restrict_to_reachable().num_states
            assert seen == reachable

    @given(
        random_safety_nfas(max_states=4, with_eps=False),
        random_safety_dfas(max_states=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_counterexample_is_minimal(self, a, d):
        """No strictly shorter word of L(A) escapes L(B).

        (ε-free automata only: with ε-moves the BFS minimizes total
        steps, which is minimal-up-to-ε in observable symbols.)
        """
        holds, cex, _, _ = lazy_product_dfa(a.initial, step_of(a), d)
        if holds:
            return
        assert a.accepts(cex) and not d.accepts(cex)
        alphabet = sorted(a.alphabet(), key=repr)
        for length in range(len(cex)):
            for word in iproduct(alphabet, repeat=length):
                assert not (a.accepts(word) and not d.accepts(word)), (
                    f"shorter violation {word} than reported {cex}"
                )

    def test_max_states_guard(self):
        def step(q):
            yield "a", q + 1

        d = DFA(initial=0, delta={0: {"a": 0}})
        with pytest.raises(RuntimeError) as exc:
            lazy_product_dfa([0], step, d, max_states=10)
        assert "10" in str(exc.value)

    def test_violation_found_before_budget_exhausted(self):
        """The lazy product can report a violation without exploring the
        full (here: unbounded) state space."""

        def step(q):
            yield "a", q + 1  # infinite chain

        d = DFA(initial=0, delta={0: {"a": 1}, 1: {}})
        holds, cex, _, seen = lazy_product_dfa(
            [0], step, d, max_states=100
        )
        assert not holds
        assert cex == ("a", "a")
        assert seen <= 100


class TestLazyProductOracle:
    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_lazy_dfa(self, a, d):
        r_dfa = lazy_product_dfa(a.initial, step_of(a), d)
        r_orc = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert r_orc[:4] == r_dfa[:4]

    @given(random_safety_nfas(), random_safety_dfas())
    @settings(max_examples=60, deadline=None)
    def test_spec_states_seen_bounded_by_dfa(self, a, d):
        holds, _, _, _, spec_seen = lazy_product_oracle(
            a.initial, step_of(a), d.initial, d.step
        )
        assert spec_seen <= d.num_states

    def test_oracle_never_queried_outside_product(self):
        """The spec oracle is only consulted for symbols the streamed
        automaton actually emits from reachable product states."""
        queries = []

        def spec_step(state, symbol):
            queries.append((state, symbol))
            return state if symbol == "a" else None

        def step(q):
            if q == 0:
                yield "a", 1

        holds, _, _, _, _ = lazy_product_oracle([0], step, "S", spec_step)
        assert holds
        assert queries == [("S", "a")]


class TestProductDfaPacked:
    """``product_dfa_packed`` (all-int DFA-sided product) against
    ``product_dfa_direct`` on hand-built row tables.

    The left automaton is given twice over the same packed states: once
    as symbol-object rows for the direct checker, once as symbol-id rows
    (bare ints for singleton groups, ``-1`` for ε) for the packed one;
    the right side once as a DFA over the symbol objects, once as an
    int-indexed row table.  Everything observable must match, with the
    packed counterexample decoding to the direct one through the symbol
    table.
    """

    SYMBOLS = ("a", "b")
    NODE_SPAN = 8  # a power of two covering packed left states 0..4

    def _left(self, rows_ids):
        """Symbol-object rows derived from id rows (1-tuples for the
        direct checker's successor groups)."""
        def row_fn(q):
            return tuple(
                (
                    None if sym < 0 else self.SYMBOLS[sym],
                    (succs,) if type(succs) is int else succs,
                )
                for sym, succs in rows_ids.get(q, ())
            )
        return row_fn

    def _spec(self, spec_rows):
        """A DFA equivalent to the int row table."""
        from repro.automata.dfa import DFA

        delta = {
            i: {
                self.SYMBOLS[s]: succ
                for s, succ in enumerate(row)
                if succ >= 0
            }
            for i, row in enumerate(spec_rows)
        }
        return DFA(initial=0, delta=delta)

    def _compare(self, rows_ids, spec_rows, max_states=None):
        from repro.automata.kernel import product_dfa_direct, product_dfa_packed

        row_ids_fn = lambda q: rows_ids.get(q, ())
        direct = product_dfa_direct(
            self._left(rows_ids), [0], self._spec(spec_rows),
            max_states=max_states,
        )
        packed = product_dfa_packed(
            row_ids_fn, [0], spec_rows,
            node_span=self.NODE_SPAN, max_states=max_states,
        )
        holds, word_ids, pairs, states = packed
        word = (
            None
            if word_ids is None
            else tuple(self.SYMBOLS[s] for s in word_ids)
        )
        assert (holds, word, pairs, states) == direct
        return packed

    def test_holding_product(self):
        rows = {
            0: ((0, 1), (-1, 2)),          # a -> 1, eps -> 2
            1: ((1, (0, 2)),),             # b -> {0, 2}
            2: ((0, 2),),                  # a self-loop
        }
        spec = ((1, 0), (1, 1))            # total delta: never violates
        got = self._compare(rows, spec)
        assert got[0] is True

    def test_violation_and_counterexample(self):
        rows = {
            0: ((0, 1),),                  # a -> 1
            1: ((-1, 2),),                 # eps -> 2
            2: ((1, 3),),                  # b -> 3 ... but spec rejects b
        }
        spec = ((1, -1), (0, -1))          # b always rejects
        got = self._compare(rows, spec)
        assert got[0] is False and got[1] == (0, 1)  # word "a b"

    def test_max_states_guard_message_identical(self):
        import pytest as _pytest
        from repro.automata.kernel import (
            product_dfa_direct,
            product_dfa_packed,
        )

        rows = {q: ((0, q + 1),) for q in range(5)}
        spec = ((0, -1),)  # a self-loop on the only spec state
        with _pytest.raises(RuntimeError) as direct:
            product_dfa_direct(
                self._left(rows), [0], self._spec(spec), max_states=3
            )
        with _pytest.raises(RuntimeError) as packed:
            product_dfa_packed(
                lambda q: rows.get(q, ()), [0], spec,
                node_span=self.NODE_SPAN, max_states=3,
            )
        assert str(direct.value) == str(packed.value)


class TestDenseKernel:
    """The dense kernel: CSR recording, bitset BFS, persistence.

    Synthetic products over hand-built id rows (the fixtures of
    ``TestProductDfaPacked``), with an identity stable encoding — the
    packed left states already are their own process-stable keys here.
    Every dense result must equal the set-based call bit for bit, on
    the numpy fast path and the stdlib fallback alike.
    """

    SYMBOLS = ("a", "b")
    NODE_SPAN = 8
    HOLDING_ROWS = {
        0: ((0, 1), (-1, 2)),          # a -> 1, eps -> 2
        1: ((1, (0, 2)),),             # b -> {0, 2}
        2: ((0, 2),),                  # a self-loop
    }
    HOLDING_SPEC = ((1, 0), (1, 1))
    VIOLATING_ROWS = {
        0: ((0, 1),),                  # a -> 1
        1: ((-1, 2),),                 # eps -> 2
        2: ((1, 3),),                  # b -> 3 ... but spec rejects b
    }
    VIOLATING_SPEC = ((1, -1), (0, -1))

    def _dense(self, cache_key=None):
        from repro.automata.kernel import DenseCSR

        return DenseCSR(
            span_bits=3, stable_of_node=lambda p: p, cache_key=cache_key
        )

    def _run(self, rows, spec, dense):
        from repro.automata.kernel import product_dfa_packed

        return product_dfa_packed(
            lambda q: rows.get(q, ()), [0], spec,
            node_span=self.NODE_SPAN, dense=dense,
        )

    def test_csr_construction_is_the_exact_adjacency(self):
        dense = self._dense()
        got = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert got == (True, None, 5, 3)
        # Dense ids in discovery order: 0=(n0,s0) 1=(n1,s1) 2=(n2,s0)
        # 3=(n0,s1) 4=(n2,s1); rows recorded in exact emission order.
        assert dense.complete and not dense.flags
        assert list(dense.node_keys) == [0, 1, 2, 0, 2]
        assert list(dense.spec_ids) == [0, 1, 0, 1, 1]
        assert list(dense.offsets) == [0, 2, 4, 5, 7, 8]
        assert list(dense.targets) == [1, 2, 3, 4, 4, 1, 4, 4]
        assert dense.num_init == 1 and dense.matches_init([0])
        assert not dense.matches_init([1])

    @pytest.mark.parametrize("numpy_path", [True, False], ids=["np", "py"])
    def test_warm_rerun_never_touches_rows(self, monkeypatch, numpy_path):
        import repro.automata.kernel as kernel_mod

        if not numpy_path:
            monkeypatch.setattr(kernel_mod, "_np", None)
        elif kernel_mod._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        dense = self._dense()
        cold = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)

        def poisoned(q):  # a warm run must be array-only
            raise AssertionError("row function touched on a warm run")

        from repro.automata.kernel import product_dfa_packed

        warm = product_dfa_packed(
            poisoned, [0], self.HOLDING_SPEC,
            node_span=self.NODE_SPAN, dense=dense,
        )
        assert warm == cold

    @pytest.mark.parametrize("numpy_path", [True, False], ids=["np", "py"])
    def test_bitset_dedup_within_a_level(self, monkeypatch, numpy_path):
        """Two length-2 paths converge on one node in the same BFS level:
        the gathered batch contains its dense id twice, the bitset must
        admit it once."""
        import repro.automata.kernel as kernel_mod

        if not numpy_path:
            monkeypatch.setattr(kernel_mod, "_np", None)
        elif kernel_mod._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        rows = {
            0: ((0, (1, 2)),),         # a -> {1, 2}
            1: ((0, 3),),              # both paths meet at node 3
            2: ((0, 3),),
            3: (),
        }
        spec = ((0,),)                 # single all-accepting spec state
        dense = self._dense()
        cold = self._run(rows, spec, dense)
        assert cold == (True, None, 4, 4)
        # the duplicate edge is recorded, the pair only counted once
        assert list(dense.targets).count(3) == 2
        warm = self._run(rows, spec, dense)
        assert warm == cold

    def test_violating_product_flags_partial_csr(self):
        dense = self._dense()
        cold = self._run(self.VIOLATING_ROWS, self.VIOLATING_SPEC, dense)
        reference = self._run(self.VIOLATING_ROWS, self.VIOLATING_SPEC, None)
        assert cold == reference and cold[1] == (0, 1)  # word "a b"
        assert not dense.complete and dense.flags
        assert len(dense.offsets) == len(dense.node_keys) + 1
        # the warm rerun reaches the flagged pair and re-runs traced
        warm = self._run(self.VIOLATING_ROWS, self.VIOLATING_SPEC, dense)
        assert warm == cold

    def test_edge_budget_bailout_disables_recording(self, monkeypatch):
        import repro.automata.kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "DENSE_MAX_EDGES", 3)
        dense = self._dense()
        got = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert got == (True, None, 5, 3)  # set-based semantics intact
        assert dense.disabled and not dense.built
        # a disabled table is skipped entirely on later runs
        again = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert again == got

    @pytest.mark.parametrize("numpy_path", [True, False], ids=["np", "py"])
    def test_flagged_initial_pair_short_circuits(
        self, monkeypatch, numpy_path
    ):
        """A product violating on its very first pair flags dense id 0;
        the warm replay must bail before any sweep."""
        import repro.automata.kernel as kernel_mod

        if not numpy_path:
            monkeypatch.setattr(kernel_mod, "_np", None)
        elif kernel_mod._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        rows = {0: ((1, 1),)}          # b from the initial node
        spec = ((0, -1),)              # ... which the spec rejects
        dense = self._dense()
        cold = self._run(rows, spec, dense)
        assert cold[0] is False and cold[1] == (1,)
        assert dense.flags == (0,)
        warm = self._run(rows, spec, dense)
        assert warm == cold

    def test_oracle_side_edge_budget_bailout(self, monkeypatch):
        """The pipeline's oracle-sided builder degrades identically when
        the edge budget trips mid-build."""
        import repro.automata.kernel as kernel_mod
        from repro.checking import check_safety
        from repro.spec import SS
        from repro.tm import DSTM, compile_tm

        monkeypatch.setattr(kernel_mod, "DENSE_MAX_EDGES", 10)
        reference = check_safety(
            DSTM(2, 1), SS, lazy_spec=True, dense_kernel=False
        )
        tm = DSTM(2, 1)
        # dense_kernel=True: recording no longer engages by default on
        # cache-less one-shot runs (the auto-gating default).
        res = check_safety(tm, SS, lazy_spec=True, dense_kernel=True)
        assert (res.holds, res.product_states, res.tm_states) == (
            reference.holds,
            reference.product_states,
            reference.tm_states,
        )
        csr = compile_tm(tm).dense_csr("oracle", SS)
        assert csr.disabled and not csr.built

    @pytest.mark.parametrize("numpy_path", [True, False], ids=["np", "py"])
    def test_save_load_round_trip(self, tmp_path, monkeypatch, numpy_path):
        import repro.automata.kernel as kernel_mod

        if not numpy_path:
            monkeypatch.setattr(kernel_mod, "_np", None)
        elif kernel_mod._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        d = str(tmp_path)
        dense = self._dense(cache_key=("dense-csr", "synthetic", "t"))
        cold = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert dense.save_warm(d)
        assert not dense.save_warm(d)  # dirty-gated
        fresh = self._dense(cache_key=("dense-csr", "synthetic", "t"))
        assert fresh.load_warm(d)
        assert fresh.complete and fresh.stable_keys
        assert list(fresh.targets) == list(dense.targets)
        warm = self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, fresh)
        assert warm == cold
        # a used (or loaded) table refuses another load
        assert not fresh.load_warm(d)

    @pytest.mark.parametrize("numpy_path", [True, False], ids=["np", "py"])
    def test_load_rejects_corrupt_and_malformed_payloads(
        self, tmp_path, monkeypatch, numpy_path
    ):
        from array import array

        import repro.automata.kernel as kernel_mod
        from repro.cache import cache_path, save_payload

        if not numpy_path:
            monkeypatch.setattr(kernel_mod, "_np", None)
        elif kernel_mod._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")

        d = str(tmp_path)
        key = ("dense-csr", "synthetic", "t")
        dense = self._dense(cache_key=key)
        self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert dense.save_warm(d)
        ok = self._dense(cache_key=key)
        assert ok.load_warm(d)

        base = {
            "span_bits": 3,
            "num_init": 1,
            "complete": True,
            "flags": [],
            "node_keys": array("q", ok.node_keys),
            "spec_ids": array("q", ok.spec_ids),
            "offsets": array("q", ok.offsets),
            "targets": array("q", ok.targets),
        }

        def variant(**kw):
            payload = dict(base)
            payload.update(kw)
            return payload

        bad_payloads = [
            "not a dict",
            variant(span_bits=4),                       # stale geometry
            variant(num_init=0),
            variant(num_init=99),
            variant(complete=False),                    # complete w/o flags
            variant(flags=[99]),                        # flag out of range
            variant(flags=[0]),                         # flags on complete
            variant(offsets=array("q", [0, 2, 4, 5, 7])),   # wrong length
            variant(offsets=array("q", [0, 4, 2, 5, 7, 8])),  # not monotone
            variant(offsets=array("q", [0, 2, 4, 5, 7, 9])),  # edge count
            variant(targets=array("q", [1, 2, 3, 4, 4, 1, 4, 99])),
            variant(node_keys=array("q", [0, 1, 2, 0, 99])),  # key > span
            variant(node_keys=list(ok.node_keys)),      # list, not array
            variant(spec_ids=array("q", [1, 1, 0, 1, 1])),  # init not spec 0
        ]
        for payload in bad_payloads:
            save_payload(d, key, payload)
            fresh = self._dense(cache_key=key)
            assert not fresh.load_warm(d), payload
        # raw garbage on disk degrades to a cold run too
        with open(cache_path(d, key), "wb") as fh:
            fh.write(b"\x80garbage that is not a pickle")
        fresh = self._dense(cache_key=key)
        assert not fresh.load_warm(d)

    def test_load_rejects_stale_engine_version(self, tmp_path):
        import pickle

        from repro.cache import ENGINE_VERSION, cache_path

        d = str(tmp_path)
        key = ("dense-csr", "synthetic", "t")
        dense = self._dense(cache_key=key)
        self._run(self.HOLDING_ROWS, self.HOLDING_SPEC, dense)
        assert dense.save_warm(d)
        path = cache_path(d, key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["version"] = ENGINE_VERSION + 1
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        fresh = self._dense(cache_key=key)
        assert not fresh.load_warm(d)
