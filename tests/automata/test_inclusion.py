"""Tests for product-based inclusion of an ε-NFA in a partial DFA."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.inclusion import check_inclusion_in_dfa
from repro.automata.nfa import EPSILON, NFA


def letters_nfa(*words):
    """An NFA accepting exactly the prefixes of the given words."""
    delta = {}
    initial = ("",)
    states = set()

    # trie construction
    def add(word):
        node = ""
        for ch in word:
            nxt = node + ch
            delta.setdefault(node, {}).setdefault(ch, set()).add(nxt)
            node = nxt
        delta.setdefault(node, {})

    for w in words:
        add(w)
    frozen = {
        q: {a: frozenset(ts) for a, ts in out.items()}
        for q, out in delta.items()
    }
    return NFA(initial=frozenset([""]), delta=frozen)


def prefix_dfa(*words):
    delta = {}

    def add(word):
        node = ""
        for ch in word:
            nxt = node + ch
            delta.setdefault(node, {})[ch] = nxt
            node = nxt
        delta.setdefault(node, {})

    for w in words:
        add(w)
    return DFA(initial="", delta=delta)


class TestInclusionHolds:
    def test_identical_languages(self):
        a = letters_nfa("ab", "ac")
        d = prefix_dfa("ab", "ac")
        res = check_inclusion_in_dfa(a, d)
        assert res.holds and bool(res)

    def test_strict_subset(self):
        res = check_inclusion_in_dfa(
            letters_nfa("ab"), prefix_dfa("ab", "cd")
        )
        assert res.holds

    def test_empty_nfa_language(self):
        a = NFA(initial=frozenset([0]), delta={0: {}})
        res = check_inclusion_in_dfa(a, prefix_dfa("x"))
        assert res.holds


class TestInclusionFails:
    def test_counterexample_word(self):
        res = check_inclusion_in_dfa(
            letters_nfa("ab", "xy"), prefix_dfa("ab")
        )
        assert not res.holds
        assert res.counterexample == ("x",)

    def test_counterexample_is_in_a_not_b(self):
        a = letters_nfa("abc")
        d = prefix_dfa("ab")
        res = check_inclusion_in_dfa(a, d)
        assert not res.holds
        assert a.accepts(res.counterexample)
        assert not d.accepts(res.counterexample)

    def test_shortest_counterexample_first(self):
        a = letters_nfa("abcd", "z")
        d = prefix_dfa("abc")
        res = check_inclusion_in_dfa(a, d)
        assert res.counterexample == ("z",)


class TestEpsilonHandling:
    def test_epsilon_moves_do_not_consume_dfa_steps(self):
        # NFA: ε to a second component that emits "b"
        a = NFA(
            initial=frozenset([0]),
            delta={
                0: {EPSILON: frozenset([1])},
                1: {"b": frozenset([2])},
                2: {},
            },
        )
        assert check_inclusion_in_dfa(a, prefix_dfa("b")).holds
        res = check_inclusion_in_dfa(a, prefix_dfa("a"))
        assert not res.holds and res.counterexample == ("b",)

    def test_epsilon_cycle_terminates(self):
        a = NFA(
            initial=frozenset([0]),
            delta={
                0: {EPSILON: frozenset([1])},
                1: {EPSILON: frozenset([0]), "a": frozenset([0])},
            },
        )
        assert check_inclusion_in_dfa(a, prefix_dfa("aaaa" * 3)).holds is False


class TestGuards:
    def test_rejects_accepting_semantics(self):
        a = NFA(
            initial=frozenset([0]), delta={0: {}}, accepting=frozenset([0])
        )
        with pytest.raises(ValueError):
            check_inclusion_in_dfa(a, prefix_dfa("a"))

    def test_product_states_reported(self):
        res = check_inclusion_in_dfa(letters_nfa("ab"), prefix_dfa("ab"))
        assert res.product_states >= 3
