"""Property-based tests: minimization and compaction preserve languages
on random partial DFAs."""

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA


@st.composite
def random_dfas(draw, max_states=6):
    n = draw(st.integers(1, max_states))
    symbols = ["a", "b"]
    delta = {}
    for q in range(n):
        out = {}
        for sym in symbols:
            target = draw(
                st.one_of(st.none(), st.integers(0, n - 1))
            )
            if target is not None:
                out[sym] = target
        delta[q] = out
    accepting = draw(
        st.one_of(
            st.none(),
            st.frozensets(st.integers(0, n - 1), max_size=n),
        )
    )
    return DFA(initial=0, delta=delta, accepting=accepting)


@st.composite
def dfa_and_words(draw):
    dfa = draw(random_dfas())
    words = [
        tuple(draw(st.lists(st.sampled_from("ab"), max_size=7)))
        for _ in range(5)
    ]
    return dfa, words


class TestMinimizeRandom:
    @given(dfa_and_words())
    @settings(max_examples=150, deadline=None)
    def test_language_preserved(self, case):
        dfa, words = case
        mini = dfa.minimize()
        for w in words:
            assert dfa.accepts(w) == mini.accepts(w), w

    @given(random_dfas())
    @settings(max_examples=80, deadline=None)
    def test_never_grows(self, dfa):
        assert dfa.minimize().num_states <= max(dfa.num_states, 1)

    @given(random_dfas())
    @settings(max_examples=60, deadline=None)
    def test_idempotent_size(self, dfa):
        mini = dfa.minimize()
        assert mini.minimize().num_states == mini.num_states

    @given(dfa_and_words())
    @settings(max_examples=80, deadline=None)
    def test_compact_preserves_language(self, case):
        dfa, words = case
        compacted, _ = dfa.compact()
        for w in words:
            assert dfa.accepts(w) == compacted.accepts(w), w
