"""Tests for the ε-NFA substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.automata.nfa import EPSILON, NFA


def simple_nfa():
    """a*b with an ε-shortcut from 0 to 2."""
    return NFA(
        initial=frozenset([0]),
        delta={
            0: {"a": frozenset([0, 1]), EPSILON: frozenset([2])},
            1: {"b": frozenset([2])},
            2: {},
        },
    )


class TestBasics:
    def test_states(self):
        assert simple_nfa().states() == {0, 1, 2}

    def test_alphabet_excludes_epsilon(self):
        assert simple_nfa().alphabet() == {"a", "b"}

    def test_num_states(self):
        assert simple_nfa().num_states == 3

    def test_all_accepting_by_default(self):
        nfa = simple_nfa()
        assert all(nfa.is_accepting(q) for q in nfa.states())

    def test_accepting_set(self):
        nfa = NFA(frozenset([0]), {0: {}}, accepting=frozenset())
        assert not nfa.is_accepting(0)


class TestClosures:
    def test_eclosure_includes_self(self):
        assert 0 in simple_nfa().eclosure([0])

    def test_eclosure_follows_epsilon(self):
        assert simple_nfa().eclosure([0]) == frozenset([0, 2])

    def test_eclosure_transitive(self):
        nfa = NFA(
            frozenset([0]),
            {
                0: {EPSILON: frozenset([1])},
                1: {EPSILON: frozenset([2])},
                2: {},
            },
        )
        assert nfa.eclosure([0]) == frozenset([0, 1, 2])

    def test_post(self):
        assert simple_nfa().post([0], "a") == frozenset([0, 1])
        assert simple_nfa().post([0], "b") == frozenset()

    def test_macro_step(self):
        nfa = simple_nfa()
        assert nfa.macro_step([0], "a") == frozenset([0, 1, 2])


class TestAcceptance:
    def test_empty_word(self):
        assert simple_nfa().accepts(())

    def test_words(self):
        nfa = simple_nfa()
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("a", "a", "b"))
        assert not nfa.accepts(("b",))
        assert not nfa.accepts(("a", "b", "b"))

    def test_run_macrostates(self):
        nfa = simple_nfa()
        macros = list(nfa.run_macrostates(("a",)))
        assert macros[0] == frozenset([0, 2])
        assert macros[1] == frozenset([0, 1, 2])

    def test_accepting_semantics(self):
        nfa = NFA(
            frozenset([0]),
            {0: {"a": frozenset([1])}, 1: {}},
            accepting=frozenset([1]),
        )
        assert not nfa.accepts(())
        assert nfa.accepts(("a",))


class TestFromStep:
    def test_counter_mod_3(self):
        nfa = NFA.from_step([0], lambda q: [("tick", (q + 1) % 3)])
        assert nfa.num_states == 3
        assert nfa.accepts(("tick",) * 7)

    def test_epsilon_in_step(self):
        nfa = NFA.from_step(
            [0],
            lambda q: [(EPSILON, 1)] if q == 0 else [("a", 1)],
        )
        assert nfa.accepts(("a",))

    def test_max_states_guard(self):
        with pytest.raises(RuntimeError):
            NFA.from_step([0], lambda q: [("a", q + 1)], max_states=10)

    def test_accepting_callback(self):
        nfa = NFA.from_step(
            [0], lambda q: [("a", 1)] if q == 0 else [], accepting=lambda q: q == 1
        )
        assert not nfa.accepts(())
        assert nfa.accepts(("a",))


class TestCompact:
    def test_language_preserved(self):
        nfa = simple_nfa()
        compacted, mapping = nfa.compact()
        for w in [(), ("a",), ("a", "b"), ("b",), ("a", "b", "b")]:
            assert nfa.accepts(w) == compacted.accepts(w)

    def test_states_are_dense_ints(self):
        compacted, _ = simple_nfa().compact()
        assert compacted.states() == set(range(3))

    def test_mapping_covers_all_states(self):
        nfa = simple_nfa()
        _, mapping = nfa.compact()
        assert set(mapping) == nfa.states()


class TestReachability:
    def test_unreachable_removed(self):
        nfa = NFA(
            frozenset([0]),
            {0: {"a": frozenset([1])}, 1: {}, 99: {"b": frozenset([0])}},
        )
        trimmed = nfa.restrict_to_reachable()
        assert 99 not in trimmed.states()
        assert trimmed.accepts(("a",))

    def test_deprecated_alias_still_works(self):
        nfa = NFA(
            frozenset([0]),
            {0: {"a": frozenset([1])}, 1: {}, 99: {"b": frozenset([0])}},
        )
        with pytest.warns(DeprecationWarning):
            trimmed = nfa.reverse_reachable()
        assert 99 not in trimmed.states()


class TestMaxStatesBound:
    def test_bound_enforced_at_insertion_time(self):
        """A high-fanout step must not overshoot the bound by the queue:
        the guard fires as soon as the limit would be crossed, and no
        more than ``max_states`` states are ever discovered."""
        discovered = []

        def step(q):
            discovered.append(q)
            return [("a", (q, i)) for i in range(100)]

        with pytest.raises(RuntimeError) as exc:
            NFA.from_step([0], step, max_states=10)
        assert "10" in str(exc.value)
        assert "at 11" in str(exc.value)
        # only the initial state was ever expanded: the first fanout
        # already exhausts the budget
        assert discovered == [0]

    def test_exact_bound_is_allowed(self):
        # chain of exactly 5 states: 0..4
        nfa = NFA.from_step(
            [0], lambda q: [("a", q + 1)] if q < 4 else [], max_states=5
        )
        assert nfa.num_states == 5
