"""Antichain inclusion/equivalence: agreement with determinization-based
checks on random safety NFAs (the algorithm behind Theorem 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.antichain import (
    check_equivalence_antichain,
    check_inclusion_antichain,
)
from repro.automata.determinize import determinize
from repro.automata.inclusion import check_inclusion_in_dfa
from repro.automata.nfa import EPSILON, NFA


@st.composite
def random_safety_nfas(draw, symbols="ab", max_states=5, with_eps=True):
    n_states = draw(st.integers(1, max_states))
    delta = {}
    labels = list(symbols) + ([EPSILON] if with_eps else [])
    for q in range(n_states):
        out = {}
        for sym in labels:
            targets = draw(
                st.frozensets(st.integers(0, n_states - 1), max_size=2)
            )
            if targets:
                out[sym] = targets
        delta[q] = out
    return NFA(initial=frozenset([0]), delta=delta)


class TestAgainstDeterminization:
    @given(random_safety_nfas(), random_safety_nfas())
    @settings(max_examples=120, deadline=None)
    def test_inclusion_agrees_with_product_check(self, a, b):
        antichain = check_inclusion_antichain(a, b)
        product = check_inclusion_in_dfa(a, determinize(b))
        assert antichain.holds == product.holds
        if not antichain.holds:
            # the antichain counterexample must be genuine
            assert a.accepts(antichain.counterexample)
            assert not b.accepts(antichain.counterexample)

    @given(random_safety_nfas())
    @settings(max_examples=60, deadline=None)
    def test_self_inclusion(self, a):
        assert check_inclusion_antichain(a, a).holds

    @given(random_safety_nfas())
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_own_determinization(self, a):
        d = determinize(a).to_nfa()
        res = check_equivalence_antichain(a, d)
        assert res.equivalent, (res.in_a_not_b, res.in_b_not_a)


class TestEquivalence:
    def test_inequivalent_languages(self):
        a = NFA(frozenset([0]), {0: {"a": frozenset([0])}})
        b = NFA(frozenset([0]), {0: {"b": frozenset([0])}})
        res = check_equivalence_antichain(a, b)
        assert not res.equivalent
        assert res.in_a_not_b == ("a",) or res.in_b_not_a == ("b",)

    def test_witness_direction(self):
        # L(a) ⊂ L(b): a-words all in b, but not vice versa
        a = NFA(frozenset([0]), {0: {"a": frozenset([0])}})
        b = NFA(
            frozenset([0]),
            {0: {"a": frozenset([0]), "b": frozenset([0])}},
        )
        res = check_equivalence_antichain(a, b)
        assert not res.equivalent
        assert res.in_a_not_b is None
        assert res.in_b_not_a is not None and "b" in res.in_b_not_a


class TestGuards:
    def test_rejects_accepting_semantics(self):
        a = NFA(frozenset([0]), {0: {}}, accepting=frozenset([0]))
        b = NFA(frozenset([0]), {0: {}})
        with pytest.raises(ValueError):
            check_inclusion_antichain(a, b)


class TestAntichainPruning:
    def test_explores_fewer_states_than_product(self):
        """The antichain prunes subsumed macrostates; on a redundant NFA
        it must not explore more pairs than the full subset product."""
        # b has many equivalent states reachable with different subsets
        delta = {}
        n = 6
        for i in range(n):
            delta[i] = {
                "a": frozenset(range(n)),
                "b": frozenset([i]),
            }
        b = NFA(initial=frozenset([0]), delta=delta)
        a = NFA(frozenset([0]), {0: {"a": frozenset([0]), "b": frozenset([0])}})
        res = check_inclusion_antichain(a, b)
        assert res.holds
        # one A-state: at most a handful of minimal macrostates survive
        assert res.product_states <= 8
