"""Tests for DOT export."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.dot import dfa_to_dot, lasso_to_dot, nfa_to_dot
from repro.automata.nfa import EPSILON, NFA


def small_nfa():
    return NFA(
        initial=frozenset([0]),
        delta={
            0: {"a": frozenset([1]), EPSILON: frozenset([1])},
            1: {"b": frozenset([0])},
        },
    )


class TestNfaDot:
    def test_contains_all_states_and_edges(self):
        dot = nfa_to_dot(small_nfa())
        assert dot.startswith("digraph")
        assert dot.count("->") >= 4  # init arrow + 3 transitions
        assert '"a"' in dot and '"b"' in dot

    def test_epsilon_rendered(self):
        assert "ε" in nfa_to_dot(small_nfa())

    def test_custom_labels(self):
        dot = nfa_to_dot(
            small_nfa(),
            state_label=lambda q: f"S{q}",
            symbol_label=lambda s: "eps" if s is EPSILON else str(s),
        )
        assert '"S0"' in dot and '"eps"' in dot

    def test_size_guard(self):
        big = NFA.from_step([0], lambda q: [("a", (q + 1) % 500)])
        with pytest.raises(ValueError):
            nfa_to_dot(big)
        assert nfa_to_dot(big, max_states=1000)

    def test_quoting(self):
        nfa = NFA(
            initial=frozenset(['q"0']), delta={'q"0': {'sy"m': frozenset(['q"0'])}}
        )
        dot = nfa_to_dot(nfa)
        assert '\\"' in dot


class TestDfaDot:
    def test_renders(self):
        dfa = DFA(initial=0, delta={0: {"a": 1}, 1: {}})
        dot = dfa_to_dot(dfa)
        assert "digraph" in dot and '"a"' in dot

    def test_real_spec_fragment(self):
        from repro.spec import OP
        from repro.spec.det import build_det_spec

        spec = build_det_spec(1, 1, OP)
        compacted, _ = spec.compact()
        dot = dfa_to_dot(compacted, symbol_label=str)
        assert dot.count("->") > 2


class TestLassoDot:
    def test_shape(self):
        dot = lasso_to_dot(["x"], ["a1", "b2"], name="cex")
        assert "digraph cex" in dot
        assert '"a1"' in dot and '"b2"' in dot
        # back edge closes the cycle: three nodes, three edges
        assert dot.count("->") == 3

    def test_empty_stem(self):
        dot = lasso_to_dot([], ["abort1"])
        assert dot.count("->") == 1

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            lasso_to_dot(["x"], [])

    def test_from_real_counterexample(self):
        from repro.checking import check_obstruction_freedom
        from repro.tm import SequentialTM

        res = check_obstruction_freedom(SequentialTM(2, 1))
        dot = lasso_to_dot(
            [str(s) for s in res.stem], [str(s) for s in res.loop]
        )
        assert '"abort1"' in dot
