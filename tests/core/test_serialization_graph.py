"""Tests for the precedence-graph construction and cycle analysis."""

from repro.core.serialization_graph import build_graph
from repro.core.statements import parse_word
from repro.core.words import com


class TestEdges:
    def test_realtime_edge(self):
        g = build_graph(parse_word("(r,1)1 c1 (r,1)2 c2"))
        assert any(e.reason == "real-time" for e in g.edges)

    def test_conflict_edge_direction(self):
        # t1 reads v1 before t2's commit → t1 serializes before t2
        g = build_graph(parse_word("(r,1)1 (w,1)2 c2 c1"))
        conflict_edges = [e for e in g.edges if e.reason == "conflict"]
        assert len(conflict_edges) == 1
        e = conflict_edges[0]
        assert g.txs[e.src].thread == 1 and g.txs[e.dst].thread == 2

    def test_commit_commit_edge_by_commit_order(self):
        g = build_graph(parse_word("(w,1)1 (w,1)2 c2 c1"))
        conflict_edges = [e for e in g.edges if e.reason == "conflict"]
        assert len(conflict_edges) == 1
        e = conflict_edges[0]
        assert g.txs[e.src].thread == 2  # committed first

    def test_unfinished_contributes_no_realtime_source(self):
        g = build_graph(parse_word("(r,1)1 (r,2)2 c2"))
        unfinished_src = [
            e
            for e in g.edges
            if e.reason == "real-time" and g.txs[e.src].is_unfinished
        ]
        assert unfinished_src == []

    def test_realtime_for_all_flag(self):
        w = parse_word("(r,1)1 (r,2)2 c2")
        base = build_graph(w)
        extended = build_graph(w, realtime_for_all=True)
        assert len(extended.edges) >= len(base.edges)


class TestCycles:
    def test_acyclic_graph(self):
        g = build_graph(parse_word("(r,1)1 c1 (w,1)2 c2"))
        assert g.is_acyclic()
        assert g.find_cycle() is None
        assert g.explain_cycle() is None

    def test_figure_1a_cycle(self):
        w = com(parse_word("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3"))
        g = build_graph(w)
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # consecutive cycle nodes are actually connected
        succs = g.successors()
        for a, b in zip(cycle, cycle[1:]):
            assert b in succs[a]

    def test_two_cycle(self):
        # t1 before t2 (read-commit on v1) and t2 before t1 (on v2)
        w = parse_word("(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2")
        g = build_graph(w)
        assert not g.is_acyclic()

    def test_explain_mentions_reason(self):
        w = parse_word("(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2")
        text = build_graph(w).explain_cycle()
        assert text is not None and "conflict" in text


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = build_graph(parse_word("(r,1)1 c1 (r,1)2 c2 (r,1)3 c3"))
        order = g.topological_order()
        assert order is not None
        pos = {v: i for i, v in enumerate(order)}
        for e in g.edges:
            if e.src != e.dst:
                assert pos[e.src] < pos[e.dst]

    def test_none_on_cycle(self):
        w = parse_word("(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2")
        assert build_graph(w).topological_order() is None

    def test_deterministic(self):
        w = parse_word("(r,1)1 (w,2)2 c1 c2")
        g = build_graph(w)
        assert g.topological_order() == g.topological_order()

    def test_empty_word(self):
        g = build_graph(())
        assert g.topological_order() == []
        assert g.is_acyclic()
