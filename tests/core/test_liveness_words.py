"""Tests for the lasso liveness predicates of Section 2."""

from hypothesis import given, strategies as st

from repro.core.liveness_words import (
    is_livelock_free_lasso,
    is_obstruction_free_lasso,
    is_wait_free_lasso,
)
from repro.core.statements import abort, commit, parse_word, read, statements


class TestObstructionFreedom:
    def test_single_thread_abort_loop_violates(self):
        # the paper's w1 = a1 counterexample shape
        assert not is_obstruction_free_lasso((), (abort(1),))

    def test_abort_with_commit_ok(self):
        assert is_obstruction_free_lasso((), (abort(1), commit(1)))

    def test_abort_with_other_thread_activity_ok(self):
        assert is_obstruction_free_lasso((), (abort(1), read(1, 2)))

    def test_commit_only_loop_ok(self):
        assert is_obstruction_free_lasso((), (read(1, 1), commit(1)))

    def test_prefix_is_irrelevant(self):
        prefix = parse_word("a1 a1 a1")
        assert is_obstruction_free_lasso(prefix, (commit(1),))

    def test_two_threads_both_aborting_ok_for_of(self):
        # each thread sees infinitely many statements of the other
        loop = (abort(1), abort(2))
        assert is_obstruction_free_lasso((), loop)


class TestLivelockFreedom:
    def test_mutual_abort_loop_violates(self):
        # the paper's w2 shape: both threads abort forever, nobody commits
        loop = parse_word("a1 (r,1)1 a2")
        assert not is_livelock_free_lasso((), loop)

    def test_any_commit_satisfies(self):
        assert is_livelock_free_lasso((), (abort(1), commit(2)))

    def test_non_aborting_active_thread_satisfies(self):
        # t2 runs forever without aborting (e.g. stuck retrying reads)
        loop = (abort(1), read(1, 2))
        assert is_livelock_free_lasso((), loop)

    def test_single_thread_abort_loop_violates(self):
        assert not is_livelock_free_lasso((), (abort(1),))

    def test_livelock_freedom_implies_obstruction_freedom(self):
        # checked on a family of small loops (stated in Section 2)
        alphabet = statements(2, 1)
        from itertools import product

        for L in range(1, 4):
            for loop in product(alphabet, repeat=L):
                if is_livelock_free_lasso((), loop):
                    assert is_obstruction_free_lasso((), loop)


class TestWaitFreedom:
    def test_abort_violates(self):
        assert not is_wait_free_lasso((), (abort(1), commit(1)))

    def test_active_thread_without_commit_violates(self):
        assert not is_wait_free_lasso((), (read(1, 1),))

    def test_all_committing_ok(self):
        loop = parse_word("(r,1)1 c1 (r,1)2 c2")
        assert is_wait_free_lasso((), loop)

    def test_wait_freedom_implies_livelock_freedom(self):
        alphabet = statements(2, 1)
        from itertools import product

        for L in range(1, 4):
            for loop in product(alphabet, repeat=L):
                if is_wait_free_lasso((), loop):
                    assert is_livelock_free_lasso((), loop)


@st.composite
def lassos(draw):
    alphabet = statements(2, 2)
    loop_len = draw(st.integers(1, 5))
    loop = tuple(draw(st.sampled_from(alphabet)) for _ in range(loop_len))
    return loop


class TestHierarchyProperty:
    @given(lassos())
    def test_wf_implies_lf_implies_of(self, loop):
        if is_wait_free_lasso((), loop):
            assert is_livelock_free_lasso((), loop)
        if is_livelock_free_lasso((), loop):
            assert is_obstruction_free_lasso((), loop)
