"""Tests for conflict detection and strict equivalence."""

from hypothesis import given, strategies as st

from repro.core.conflicts import (
    ConflictPair,
    conflicting_pairs,
    strictly_equivalent,
)
from repro.core.statements import parse_word, statements


class TestConflictingPairs:
    def test_read_commit_conflict(self):
        # t1 globally reads v1; t2 commits writing v1 → conflict
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        pairs = conflicting_pairs(w)
        assert ConflictPair(0, 2, 1, "read-commit") in pairs

    def test_commit_commit_conflict(self):
        w = parse_word("(w,1)1 (w,1)2 c1 c2")
        pairs = conflicting_pairs(w)
        assert any(p.reason == "commit-commit" for p in pairs)

    def test_local_read_never_conflicts(self):
        # t1 reads its own write: not a global read
        w = parse_word("(w,1)1 (r,1)1 (w,1)2 c2 c1")
        reads = [p for p in pairs_involving(w, 1)]
        assert all(p.reason != "read-commit" or p.i != 1 for p in reads)

    def test_no_conflict_across_disjoint_vars(self):
        w = parse_word("(r,1)1 (w,2)2 c2 c1")
        assert conflicting_pairs(w) == []

    def test_uncommitted_write_no_conflict(self):
        # t2 writes v1 but never commits: deferred update → no conflict
        w = parse_word("(r,1)1 (w,1)2 c1")
        assert conflicting_pairs(w) == []

    def test_aborted_writer_no_conflict(self):
        w = parse_word("(r,1)1 (w,1)2 a2 c1")
        assert conflicting_pairs(w) == []

    def test_aborting_readers_global_read_conflicts(self):
        # opacity cares about aborting readers; the conflict machinery
        # must see the global read of an aborting transaction
        w = parse_word("(r,1)3 (w,1)2 c2 a3")
        pairs = conflicting_pairs(w)
        assert any(p.reason == "read-commit" and p.var == 1 for p in pairs)

    def test_pairs_are_ordered(self):
        w = parse_word("(w,1)2 c2 (r,1)1 c1")
        for p in conflicting_pairs(w):
            assert p.i < p.j


def pairs_involving(w, pos):
    return [p for p in conflicting_pairs(w) if pos in (p.i, p.j)]


class TestStrictEquivalence:
    def test_identical_words(self):
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        assert strictly_equivalent(w, w)

    def test_different_thread_projections(self):
        assert not strictly_equivalent(
            parse_word("(r,1)1 c1"), parse_word("(w,1)1 c1")
        )

    def test_different_multiset(self):
        assert not strictly_equivalent(parse_word("c1"), parse_word("c1 c2"))

    def test_commuting_non_conflicting(self):
        w1 = parse_word("(r,1)1 (w,2)2 c1 c2")
        w2 = parse_word("(w,2)2 (r,1)1 c2 c1")
        # no conflicts, both transactions overlap → both orders equivalent
        assert strictly_equivalent(w1, w2)

    def test_conflict_order_violation(self):
        # read of v1 before t2's commit vs after it
        w1 = parse_word("(r,1)1 (w,1)2 c2 c1")
        w2 = parse_word("(w,1)2 c2 (r,1)1 c1")
        assert not strictly_equivalent(w1, w2)

    def test_realtime_order_violation(self):
        # t1's tx wholly precedes t2's in w1; swapping violates (iii)
        w1 = parse_word("(r,1)1 c1 (r,2)2 c2")
        w2 = parse_word("(r,2)2 c2 (r,1)1 c1")
        assert not strictly_equivalent(w1, w2)

    def test_unfinished_may_move_backwards(self):
        # unfinished x imposes no real-time obligation of its own
        w1 = parse_word("(r,1)1 (r,2)2 c2")
        w2 = parse_word("(r,2)2 c2 (r,1)1")
        assert strictly_equivalent(w1, w2)

    def test_aborting_realtime_respected(self):
        w1 = parse_word("(r,1)1 a1 (r,2)2 c2")
        w2 = parse_word("(r,2)2 c2 (r,1)1 a1")
        assert not strictly_equivalent(w1, w2)

    def test_overlapping_transactions_swap(self):
        # overlapping transactions: neither precedes, swap allowed if
        # conflicts permit
        w1 = parse_word("(r,1)1 (r,2)2 c1 c2")
        w2 = parse_word("(r,2)2 (r,1)1 c2 c1")
        assert strictly_equivalent(w1, w2)


@st.composite
def word_pairs(draw):
    alphabet = statements(2, 2)
    length = draw(st.integers(0, 6))
    w = tuple(draw(st.sampled_from(alphabet)) for _ in range(length))
    return w


class TestEquivalenceProperties:
    @given(word_pairs())
    def test_reflexive(self, w):
        assert strictly_equivalent(w, w)

    @given(word_pairs())
    def test_conflicts_deterministic(self, w):
        assert conflicting_pairs(w) == conflicting_pairs(w)
