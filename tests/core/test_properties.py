"""Tests for the reference safety checkers against the paper's examples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.properties import (
    is_opaque,
    is_strictly_serializable,
    opacity_witness,
    strict_serializability_witness,
)
from repro.core.statements import parse_word, statements
from repro.core.words import com, is_sequential


# The worked examples of Section 5 (Figures 1 and 2), plus Table 2's
# counterexample w1 — the ground truth our whole pipeline rests on.
PAPER_EXAMPLES = [
    # (name, word, strictly serializable?, opaque?)
    ("fig1a", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3", False, False),
    (
        "fig1b",
        "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3",
        False,
        False,
    ),
    ("fig2a", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1", True, False),
    ("fig2b", "(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1", True, False),
    ("table2-w1", "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1", False, False),
]


class TestPaperExamples:
    @pytest.mark.parametrize("name,text,ss,op", PAPER_EXAMPLES)
    def test_verdicts(self, name, text, ss, op):
        w = parse_word(text)
        assert is_strictly_serializable(w) == ss, name
        assert is_opaque(w) == op, name


class TestBasicVerdicts:
    def test_empty_word(self):
        assert is_strictly_serializable(())
        assert is_opaque(())

    def test_sequential_word(self):
        w = parse_word("(r,1)1 (w,2)1 c1 (w,1)2 c2")
        assert is_strictly_serializable(w) and is_opaque(w)

    def test_aborts_only(self):
        w = parse_word("a1 a2 a1")
        assert is_strictly_serializable(w) and is_opaque(w)

    def test_aborted_transactions_ignored_by_ss(self):
        # the aborting read of t3 breaks opacity but not strict
        # serializability (fig 2b shape)
        w = parse_word("(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1")
        assert is_strictly_serializable(w)
        assert not is_opaque(w)

    def test_stale_second_read_not_opaque(self):
        # two global reads of the same variable straddling a commit
        w = parse_word("(r,1)1 (w,1)2 c2 (r,1)1")
        assert not is_opaque(w)

    def test_write_skew_like_cycle(self):
        w = parse_word("(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2")
        assert not is_strictly_serializable(w)


class TestWitnesses:
    def test_ss_witness_is_sequential_equivalent(self):
        w = parse_word("(r,1)1 (w,1)2 c1 c2")
        wit = strict_serializability_witness(w)
        assert wit.holds
        assert wit.sequential_word is not None
        assert is_sequential(wit.sequential_word)

    def test_ss_witness_respects_conflict(self):
        # t1 must serialize before t2
        w = parse_word("(r,1)1 (w,1)2 c1 c2")
        wit = strict_serializability_witness(w)
        threads = [s.thread for s in wit.sequential_word if s.is_commit]
        assert threads == [1, 2]

    def test_refutation_has_explanation(self):
        w = parse_word("(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2")
        wit = strict_serializability_witness(w)
        assert not wit.holds
        assert wit.cycle_explanation is not None

    def test_opacity_witness_contains_all_transactions(self):
        w = parse_word("(r,1)1 (w,2)2 a2 c1")
        wit = opacity_witness(w)
        assert wit.holds
        assert sorted(s.thread for s in wit.sequential_word) == sorted(
            s.thread for s in w
        )


@st.composite
def random_words(draw, n=2, k=2, max_len=8):
    alphabet = statements(n, k)
    length = draw(st.integers(0, max_len))
    return tuple(draw(st.sampled_from(alphabet)) for _ in range(length))


class TestSemanticProperties:
    @given(random_words())
    def test_opacity_implies_strict_serializability(self, w):
        """piop ⊆ piss (stated in Section 2)."""
        if is_opaque(w):
            assert is_strictly_serializable(w)

    @given(random_words())
    @settings(max_examples=60)
    def test_prefix_closure(self, w):
        """Both properties are prefix-closed on our checkers.

        If a prefix is bad, the whole word is bad (the conflict cycle
        only gains edges as the word grows) — equivalently, good words
        have good prefixes.
        """
        if is_strictly_serializable(w):
            for i in range(len(w)):
                assert is_strictly_serializable(w[:i])
        if is_opaque(w):
            for i in range(len(w)):
                assert is_opaque(w[:i])

    @given(random_words())
    def test_ss_depends_only_on_com(self, w):
        assert is_strictly_serializable(w) == is_strictly_serializable(
            com(w)
        )

    @given(random_words())
    def test_witness_agrees_with_predicate(self, w):
        assert strict_serializability_witness(w).holds == (
            is_strictly_serializable(w)
        )
        assert opacity_witness(w).holds == is_opaque(w)

    @given(random_words())
    @settings(max_examples=60)
    def test_abort_extension_preserves_properties(self, w):
        """Aborting a transaction never creates new violations."""
        from repro.core.statements import abort

        for t in (1, 2):
            if is_strictly_serializable(w):
                assert is_strictly_serializable(w + (abort(t),))
            if is_opaque(w):
                assert is_opaque(w + (abort(t),))
