"""Tests for thread projections, transactions, com(), and sequentiality."""

import pytest
from hypothesis import given, strategies as st

from repro.core.statements import (
    abort,
    commit,
    parse_word,
    read,
    statements,
    write,
)
from repro.core.words import (
    TxStatus,
    com,
    committed_transactions,
    is_sequential,
    thread_projection,
    transaction_at,
    transactions,
    unfinished_transactions,
)


class TestThreadProjection:
    def test_basic(self):
        w = parse_word("(r,1)1 (w,2)2 c1 a2")
        assert thread_projection(w, 1) == (read(1, 1), commit(1))
        assert thread_projection(w, 2) == (write(2, 2), abort(2))

    def test_absent_thread(self):
        assert thread_projection(parse_word("c1"), 7) == ()

    @given(st.integers(1, 3))
    def test_projection_is_subsequence_of_word(self, t):
        w = parse_word("(r,1)1 (w,2)2 c1 (r,2)3 a2 c3")
        proj = thread_projection(w, t)
        it = iter(w)
        assert all(s in it for s in proj)  # subsequence check


class TestTransactions:
    def test_single_committing(self):
        w = parse_word("(r,1)1 (w,2)1 c1")
        txs = transactions(w)
        assert len(txs) == 1
        assert txs[0].status is TxStatus.COMMITTING
        assert txs[0].indices == (0, 1, 2)

    def test_aborting(self):
        txs = transactions(parse_word("(r,1)1 a1"))
        assert txs[0].status is TxStatus.ABORTING

    def test_unfinished(self):
        txs = transactions(parse_word("(r,1)1 (w,1)1"))
        assert txs[0].status is TxStatus.UNFINISHED

    def test_multiple_per_thread(self):
        w = parse_word("(r,1)1 c1 (w,2)1 a1 (r,1)1")
        txs = transactions(w)
        assert [tx.status for tx in txs] == [
            TxStatus.COMMITTING,
            TxStatus.ABORTING,
            TxStatus.UNFINISHED,
        ]
        assert [tx.indices for tx in txs] == [(0, 1), (2, 3), (4,)]

    def test_interleaved_threads(self):
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        txs = transactions(w)
        assert len(txs) == 2
        by_thread = {tx.thread: tx for tx in txs}
        assert by_thread[1].indices == (0, 3)
        assert by_thread[2].indices == (1, 2)

    def test_empty_commit_is_a_transaction(self):
        txs = transactions(parse_word("c1"))
        assert len(txs) == 1 and txs[0].is_committing

    def test_ordering_by_first_statement(self):
        w = parse_word("(r,1)2 (r,1)1 c1 c2")
        txs = transactions(w)
        assert [tx.thread for tx in txs] == [2, 1]

    def test_transaction_at(self):
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        assert transaction_at(w, 0).thread == 1
        assert transaction_at(w, 2).thread == 2

    def test_transaction_at_out_of_range(self):
        with pytest.raises(IndexError):
            transaction_at(parse_word("c1"), 5)


class TestTransactionQueries:
    def test_writes(self):
        w = parse_word("(w,1)1 (w,2)1 c1")
        assert transactions(w)[0].writes() == {1, 2}

    def test_global_reads_exclude_own_writes(self):
        # read of v1 after writing v1 is local
        w = parse_word("(w,1)1 (r,1)1 (r,2)1 c1")
        tx = transactions(w)[0]
        assert tx.global_reads() == {2}
        assert tx.global_read_positions() == [2]

    def test_global_read_before_own_write(self):
        w = parse_word("(r,1)1 (w,1)1 c1")
        assert transactions(w)[0].global_reads() == {1}

    def test_commit_position(self):
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        by_thread = {tx.thread: tx for tx in transactions(w)}
        assert by_thread[1].commit_position() == 3
        assert by_thread[2].commit_position() == 2
        assert transactions(parse_word("(r,1)1"))[0].commit_position() is None

    def test_precedes(self):
        w = parse_word("(r,1)1 c1 (r,1)2 c2")
        x, y = transactions(w)
        assert x.precedes(y) and not y.precedes(x)

    def test_overlap_means_no_precedence(self):
        w = parse_word("(r,1)1 (r,1)2 c1 c2")
        x, y = transactions(w)
        assert not x.precedes(y) and not y.precedes(x)


class TestCom:
    def test_keeps_only_committing(self):
        w = parse_word("(r,1)1 (w,1)2 a2 c1")
        assert com(w) == (read(1, 1), commit(1))

    def test_drops_unfinished(self):
        w = parse_word("(r,1)1 (w,2)2 c2")
        assert com(w) == (write(2, 2), commit(2))

    def test_empty_word(self):
        assert com(()) == ()

    def test_com_idempotent(self):
        w = parse_word("(r,1)1 (w,1)2 a2 c1 (r,2)2")
        assert com(com(w)) == com(w)

    def test_com_preserves_order(self):
        w = parse_word("(w,1)2 (r,1)1 c2 c1")
        assert com(w) == (write(1, 2), read(1, 1), commit(2), commit(1))


class TestSequential:
    def test_sequential_word(self):
        assert is_sequential(parse_word("(r,1)1 c1 (w,1)2 c2"))

    def test_interleaved_not_sequential(self):
        assert not is_sequential(parse_word("(r,1)1 (w,1)2 c1 c2"))

    def test_empty_and_single(self):
        assert is_sequential(())
        assert is_sequential(parse_word("(r,1)1 (w,2)1"))

    def test_unfinished_blocks_are_sequential(self):
        # two unfinished transactions as contiguous blocks
        assert is_sequential(parse_word("(r,1)1 (w,1)1 (r,2)2"))

    def test_helpers(self):
        w = parse_word("(r,1)1 c1 (w,1)2 (r,2)3 a3")
        assert [tx.thread for tx in committed_transactions(w)] == [1]
        assert [tx.thread for tx in unfinished_transactions(w)] == [2]


@st.composite
def random_words(draw, n=3, k=2, max_len=10):
    alphabet = statements(n, k)
    length = draw(st.integers(0, max_len))
    return tuple(draw(st.sampled_from(alphabet)) for _ in range(length))


class TestTransactionInvariants:
    @given(random_words())
    def test_partition(self, w):
        """Every statement belongs to exactly one transaction."""
        seen = []
        for tx in transactions(w):
            seen.extend(tx.indices)
        assert sorted(seen) == list(range(len(w)))

    @given(random_words())
    def test_per_thread_consistency(self, w):
        for tx in transactions(w):
            assert all(w[i].thread == tx.thread for i in tx.indices)
            # only the last statement may finish the transaction
            for i in tx.indices[:-1]:
                assert not w[i].is_finishing

    @given(random_words())
    def test_at_most_one_unfinished_per_thread(self, w):
        unfinished = unfinished_transactions(w)
        threads = [tx.thread for tx in unfinished]
        assert len(threads) == len(set(threads))

    @given(random_words())
    def test_com_thread_projections(self, w):
        """com() preserves each committing transaction verbatim."""
        cw = com(w)
        for tx in transactions(cw):
            assert tx.is_committing
