"""Tests for statements, commands, parsing, and alphabets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.statements import (
    Command,
    Kind,
    Statement,
    abort,
    commands,
    commit,
    format_word,
    iter_words,
    parse_statement,
    parse_word,
    read,
    statements,
    threads_of,
    variables_of,
    write,
)


class TestKind:
    def test_short_names(self):
        assert Kind.READ.short == "r"
        assert Kind.WRITE.short == "w"
        assert Kind.COMMIT.short == "c"
        assert Kind.ABORT.short == "a"

    def test_values_match_ext_names(self):
        assert Kind("read") is Kind.READ
        assert Kind("abort") is Kind.ABORT


class TestConstructors:
    def test_read(self):
        s = read(2, 1)
        assert s.kind is Kind.READ and s.var == 2 and s.thread == 1
        assert s.is_read and not s.is_write

    def test_write(self):
        s = write(1, 3)
        assert s.is_write and s.var == 1 and s.thread == 3

    def test_commit_has_no_var(self):
        s = commit(2)
        assert s.is_commit and s.var is None and s.is_finishing

    def test_abort_is_finishing(self):
        s = abort(1)
        assert s.is_abort and s.is_finishing

    def test_reads_and_writes_are_not_finishing(self):
        assert not read(1, 1).is_finishing
        assert not write(1, 1).is_finishing

    def test_command_projection(self):
        assert read(2, 1).command == Command(Kind.READ, 2)
        assert commit(5).command == Command(Kind.COMMIT, None)


class TestCommandValidation:
    def test_read_requires_variable(self):
        with pytest.raises(ValueError):
            Command(Kind.READ, None).validate()

    def test_commit_rejects_variable(self):
        with pytest.raises(ValueError):
            Command(Kind.COMMIT, 3).validate()

    def test_valid_commands_pass(self):
        assert Command(Kind.WRITE, 1).validate() == Command(Kind.WRITE, 1)

    def test_with_thread(self):
        assert Command(Kind.READ, 1).with_thread(2) == read(1, 2)


class TestAlphabets:
    def test_commands_count(self):
        # C = {commit} ∪ ({read, write} × V)
        assert len(commands(2)) == 2 * 2 + 1
        assert len(commands(3, include_abort=True)) == 2 * 3 + 2

    def test_commands_zero_vars(self):
        assert [c.kind for c in commands(0)] == [Kind.COMMIT]

    def test_commands_negative_raises(self):
        with pytest.raises(ValueError):
            commands(-1)

    def test_statements_count(self):
        # Ŝ = Ĉ × T
        assert len(statements(2, 2)) == 2 * (2 * 2 + 2)
        assert len(statements(3, 1, include_abort=False)) == 3 * 3

    def test_statements_cover_all_threads(self):
        assert threads_of(statements(3, 2)) == (1, 2, 3)

    def test_statements_negative_raises(self):
        with pytest.raises(ValueError):
            statements(-1, 2)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("(r,1)2", read(1, 2)),
            ("(w,2)1", write(2, 1)),
            ("c1", commit(1)),
            ("a2", abort(2)),
            ("(read,3)1", read(3, 1)),
            ("(write,1)4", write(1, 4)),
            ("commit2", commit(2)),
            ("abort1", abort(1)),
        ],
    )
    def test_parse_statement(self, text, expected):
        assert parse_statement(text) == expected

    def test_parse_statement_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_statement("xyzzy")

    def test_parse_word_spaces(self):
        w = parse_word("(r,1)1 (w,2)1 c1")
        assert w == (read(1, 1), write(2, 1), commit(1))

    def test_parse_word_commas(self):
        w = parse_word("(w,2)1, (w,1)2, c2, c1")
        assert w == (write(2, 1), write(1, 2), commit(2), commit(1))

    def test_parse_empty_word(self):
        assert parse_word("") == ()

    def test_format_round_trip(self):
        w = (read(1, 1), write(2, 2), abort(2), commit(1))
        assert parse_word(format_word(w)) == w

    def test_str_matches_paper_notation(self):
        assert str(read(1, 2)) == "(r,1)2"
        assert str(commit(1)) == "c1"


@st.composite
def words(draw, n=2, k=2, max_len=8):
    alphabet = statements(n, k)
    length = draw(st.integers(0, max_len))
    return tuple(
        draw(st.sampled_from(alphabet)) for _ in range(length)
    )


class TestRoundTripProperty:
    @given(words())
    def test_format_parse_round_trip(self, word):
        assert parse_word(format_word(word)) == word

    @given(words(n=3, k=3))
    def test_threads_and_variables_bounds(self, word):
        assert all(1 <= t <= 3 for t in threads_of(word))
        assert all(1 <= v <= 3 for v in variables_of(word))


class TestIterWords:
    def test_counts_by_length(self):
        # |Ŝ| = n(2k+2) = 2*(2+2) = 8 for n=2, k=1
        all_words = list(iter_words(2, 1, 2))
        assert len(all_words) == 1 + 8 + 64

    def test_starts_with_empty(self):
        assert next(iter_words(1, 1, 1)) == ()

    def test_without_abort(self):
        words_ = list(iter_words(1, 1, 1, include_abort=False))
        assert len(words_) == 1 + 3
        assert all(not s.is_abort for w in words_ for s in w)
