"""Tests for the online safety monitors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import (
    OpacityMonitor,
    SafetyMonitor,
    StrictSerializabilityMonitor,
)
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import commit, parse_word, read, statements, write
from repro.spec import OP, SS


class TestBasics:
    def test_fresh_monitor_ok(self):
        assert OpacityMonitor(2, 2).ok

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            SafetyMonitor(0, 1, OP)
        m = OpacityMonitor(2, 2)
        with pytest.raises(ValueError):
            m.feed(read(1, 3))  # thread out of range
        with pytest.raises(ValueError):
            m.feed(read(5, 1))  # variable out of range

    def test_feed_returns_status(self):
        m = StrictSerializabilityMonitor(2, 2)
        assert m.feed(read(1, 1)) is True

    def test_history_recorded(self):
        m = OpacityMonitor(2, 2)
        w = parse_word("(r,1)1 (w,1)2 c2")
        m.feed_word(w)
        assert m.history == w


class TestViolationDetection:
    def test_stale_reread_breaks_opacity(self):
        m = OpacityMonitor(2, 2)
        m.feed_word(parse_word("(r,1)1 (w,1)2 c2"))
        assert m.ok
        assert not m.would_accept(read(1, 1))
        m.feed(read(1, 1))
        assert not m.ok
        assert m.violation_index == 3

    def test_monitor_latches(self):
        m = OpacityMonitor(2, 2)
        m.feed_word(parse_word("(r,1)1 (w,1)2 c2 (r,1)1"))
        assert not m.ok
        m.feed(commit(2))
        assert not m.ok
        assert m.violation_index == 3  # first violation remembered

    def test_ss_monitor_tolerates_aborting_reader(self):
        # fig 2(b) shape: not opaque, strictly serializable
        w = parse_word("(w,1)2 (r,1)1 c2 (w,2)1 c1")
        ss = StrictSerializabilityMonitor(2, 2)
        assert ss.feed_word(w)

    def test_would_accept_does_not_mutate(self):
        m = OpacityMonitor(2, 2)
        m.feed_word(parse_word("(r,1)1 (w,1)2 c2"))
        before = m.history
        m.would_accept(read(1, 1))
        assert m.history == before and m.ok

    def test_reset(self):
        m = OpacityMonitor(2, 2)
        m.feed_word(parse_word("(r,1)1 (w,1)2 c2 (r,1)1"))
        assert not m.ok
        m.reset()
        assert m.ok and m.history == ()


@st.composite
def words_22(draw, max_len=10):
    alphabet = statements(2, 2)
    length = draw(st.integers(0, max_len))
    return tuple(draw(st.sampled_from(alphabet)) for _ in range(length))


class TestAgainstReference:
    @given(words_22())
    @settings(max_examples=120, deadline=None)
    def test_monitor_agrees_with_offline_checkers(self, w):
        ss = StrictSerializabilityMonitor(2, 2)
        op = OpacityMonitor(2, 2)
        assert ss.feed_word(w) == is_strictly_serializable(w)
        assert op.feed_word(w) == is_opaque(w)

    @given(words_22())
    @settings(max_examples=60, deadline=None)
    def test_violation_index_is_first_bad_prefix(self, w):
        m = OpacityMonitor(2, 2)
        m.feed_word(w)
        if m.violation_index is not None:
            i = m.violation_index
            assert is_opaque(w[:i])
            assert not is_opaque(w[: i + 1])
