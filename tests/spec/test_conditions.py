"""Figure 3: the commit conditions C1–C4 of the Σss specification.

Each condition is driven through Algorithm 5 with explicit serialization
points (ε moves), asserting that exactly the oval-marked commit is
rejected in-branch, that the prefix without it survives, and that the
mirror-image scenario (where the condition does not apply) commits fine.
"""

import pytest

from repro.core.statements import parse_word
from repro.spec import OP, SS
from repro.spec.nondet import initial_state, nondet_epsilon, nondet_step


def drive(moves, prop):
    """Apply statements and ε moves; return final state or None."""
    q = initial_state(2)
    for m in moves:
        if q is None:
            return None
        if m in ("e1", "e2"):
            q = nondet_epsilon(q, int(m[1]), prop)
        else:
            q = nondet_step(q, parse_word(m)[0], prop)
    return q


CONDITIONS = {
    "C1": ["(w,2)1", "e1", "(w,1)2", "e2", "c2", "(r,1)1", "c1"],
    "C2": ["(w,1)1", "e1", "(r,1)2", "e2", "c2", "c1"],
    "C3": ["(w,1)1", "e1", "(w,1)2", "e2", "c2", "c1"],
    "C4": ["(w,1)2", "e2", "(r,1)1", "e1", "c2", "c1"],
}


@pytest.mark.parametrize("name", sorted(CONDITIONS))
class TestConditionsRejectTheMarkedCommit:
    def test_rejected_for_ss(self, name):
        assert drive(CONDITIONS[name], SS) is None

    def test_rejected_for_op(self, name):
        # opacity subsumes strict serializability, so the same commits
        # (or an earlier statement) must die in the op branch too
        q = initial_state(2)
        died = False
        for m in CONDITIONS[name]:
            if m in ("e1", "e2"):
                q = nondet_epsilon(q, int(m[1]), OP)
            else:
                q = nondet_step(q, parse_word(m)[0], OP)
            if q is None:
                died = True
                break
        assert died

    def test_prefix_survives(self, name):
        assert drive(CONDITIONS[name][:-1], SS) is not None


class TestMirrorScenariosCommit:
    """The same shapes with the serialization order reversed are fine."""

    def test_c1_mirror_read_before_commit(self):
        # x reads v before y commits: consistent with x-before-y
        moves = ["(w,2)1", "e1", "(w,1)2", "(r,1)1", "e2", "c2", "c1"]
        # here the read happens before y's ε... still predecessor;
        # the truly safe variant is x serializing after y:
        safe = ["(w,1)2", "e2", "c2", "(w,2)1", "(r,1)1", "e1", "c1"]
        assert drive(safe, SS) is not None

    def test_c2_mirror_reader_serializes_first(self):
        # y reads x's variable but serializes *before* x: no constraint
        safe = ["(r,1)2", "e2", "(w,1)1", "e1", "c2", "c1"]
        assert drive(safe, SS) is not None

    def test_c3_mirror_commit_in_serialization_order(self):
        safe = ["(w,1)1", "e1", "(w,1)2", "e2", "c1", "c2"]
        assert drive(safe, SS) is not None

    def test_c4_mirror_reader_before_writer(self):
        safe = ["(w,1)2", "(r,1)1", "e1", "e2", "c2", "c1"]
        assert drive(safe, SS) is not None


class TestBranchStructure:
    def test_epsilon_only_once_per_transaction(self):
        q = drive(["(r,1)1", "e1"], SS)
        assert q is not None
        assert nondet_epsilon(q, 1, SS) is None  # already serialized

    def test_epsilon_needs_started(self):
        q = initial_state(2)
        assert nondet_epsilon(q, 1, SS) is None

    def test_commit_without_epsilon_rejected(self):
        assert drive(["(r,1)1", "c1"], SS) is None

    def test_serialization_order_is_epsilon_order(self):
        # both serialized: first ε is the predecessor
        q = drive(["(r,1)1", "e1", "(w,2)2", "e2"], SS)
        assert q is not None
        # thread 1 ∈ sp(thread 2)
        assert 1 in q[1][6]
        assert 2 not in q[0][6]
