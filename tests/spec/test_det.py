"""Tests for the deterministic specifications Σdss / Σdop (Algorithm 6)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import parse_word, statements
from repro.spec import OP, SS
from repro.spec.det import (
    build_det_spec,
    det_spec_accepts,
    det_step,
    initial_state,
)

ALPHABET_22 = statements(2, 2)


class TestMechanics:
    def test_initial_state(self):
        q = initial_state(2)
        assert all(rec[0] == "fin" and not rec[1] for rec in q)

    def test_no_epsilon_needed_for_commit(self):
        """The deterministic spec decides at commit time."""
        q = det_step(initial_state(2), parse_word("(r,1)1")[0], SS)
        q = det_step(q, parse_word("c1")[0], SS)
        assert q is not None

    def test_weak_predecessor_recorded_on_read_of_written_var(self):
        w = parse_word("(w,1)2 (r,1)1")
        q = det_step(initial_state(2), w[0], SS)
        q = det_step(q, w[1], SS)
        # thread 1 (reader) becomes a weak predecessor of thread 2
        assert 1 in q[1][6]  # wp of thread 2

    def test_self_cycle_blocks_commit(self):
        # t1 reads v1, t2 writes v1 and also reads v2 which t1 writes:
        # committing either first closes the other's cycle eventually
        w = parse_word("(r,1)1 (w,2)1 (r,2)2 (w,1)2")
        q = initial_state(2)
        for s in w:
            q = det_step(q, s, SS)
            assert q is not None
        # both now weak predecessors of each other: neither commit runs
        # to a *pair* of commits; first commit is allowed, second fails
        q1 = det_step(q, parse_word("c1")[0], SS)
        assert q1 is not None
        assert det_step(q1, parse_word("c2")[0], SS) is None

    def test_pending_status_after_commit(self):
        w = parse_word("(w,1)2 (r,1)1 c2")
        q = initial_state(2)
        for s in w:
            q = det_step(q, s, SS)
        assert q[0][0] == "pend"  # t1 must now serialize before t2

    def test_doom_is_sticky_across_commits(self):
        """Regression: Algorithm 6's literal pending-assignment would
        resurrect an invalid thread."""
        w = parse_word("(r,1)1 (w,1)2 c2 (r,2)2 (w,1)1 c2")
        q = initial_state(2)
        for s in w:
            q = det_step(q, s, SS)
            assert q is not None
        assert q[0][1]  # thread 1 still doomed
        assert det_step(q, parse_word("c1")[0], SS) is None

    def test_opacity_read_guard(self):
        # t1 read v1 before t2's commit-write of v1, so t1 serializes
        # before t2; re-reading v1 after the commit is prohibited
        w = parse_word("(w,1)2 (r,1)1 c2")
        q = initial_state(2)
        for s in w:
            q = det_step(q, s, OP)
        assert 1 in q[0][4]  # v1 in prs of thread 1
        assert det_step(q, parse_word("(r,1)1")[0], OP) is None


class TestDeterminism:
    def test_unique_successor_per_statement(self, det_spec_ss_22):
        for q, out in det_spec_ss_22.delta.items():
            assert len(out) == len(set(out))

    def test_build_is_reproducible(self):
        a = build_det_spec(2, 1, SS)
        b = build_det_spec(2, 1, SS)
        assert a.num_states == b.num_states
        assert a.initial == b.initial


class TestDifferentialExhaustive:
    @pytest.mark.parametrize("length", [0, 1, 2, 3])
    def test_agrees_with_reference(self, length):
        for tup in itertools.product(ALPHABET_22, repeat=length):
            assert det_spec_accepts(
                tup, 2, 2, SS
            ) == is_strictly_serializable(tup), tup
            assert det_spec_accepts(tup, 2, 2, OP) == is_opaque(tup), tup

    @pytest.mark.slow
    def test_agrees_with_reference_length4(self):
        for tup in itertools.product(ALPHABET_22, repeat=4):
            assert det_spec_accepts(
                tup, 2, 2, SS
            ) == is_strictly_serializable(tup), tup
            assert det_spec_accepts(tup, 2, 2, OP) == is_opaque(tup), tup


@st.composite
def words_22(draw, max_len=12):
    length = draw(st.integers(0, max_len))
    return tuple(draw(st.sampled_from(ALPHABET_22)) for _ in range(length))


class TestDifferentialRandom:
    @given(words_22())
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_reference(self, w):
        assert det_spec_accepts(w, 2, 2, SS) == is_strictly_serializable(w)
        assert det_spec_accepts(w, 2, 2, OP) == is_opaque(w)


class TestStateCounts:
    def test_ss_state_count(self, det_spec_ss_22):
        """Σdss: 3424 states in our encoding (paper: 3520)."""
        assert det_spec_ss_22.num_states == 3424

    def test_op_state_count(self, det_spec_op_22):
        """Σdop: 2272 states — exactly the paper's number."""
        assert det_spec_op_22.num_states == 2272

    def test_det_smaller_than_nondet(
        self, det_spec_ss_22, det_spec_op_22, nondet_spec_ss_22,
        nondet_spec_op_22,
    ):
        """Section 5.3's surprise: the hand-built deterministic specs are
        much smaller than the nondeterministic ones."""
        assert det_spec_ss_22.num_states < nondet_spec_ss_22.num_states / 3
        assert det_spec_op_22.num_states < nondet_spec_op_22.num_states / 3


class TestPaperCounterexample:
    def test_w1_rejected(self, det_spec_ss_22, det_spec_op_22):
        w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        assert not det_spec_ss_22.accepts(w1)
        assert not det_spec_op_22.accepts(w1)

    def test_prefix_of_w1_accepted(self, det_spec_ss_22):
        w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2")
        assert det_spec_ss_22.accepts(w1)
