"""Theorem 3: language equivalence of the nondeterministic and
deterministic TM specifications, via antichains (paper Section 5.3)."""

import pytest

from repro.automata import (
    check_equivalence_antichain,
    check_inclusion_antichain,
    check_inclusion_in_dfa,
    determinize,
)
from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.spec.nondet import build_nondet_spec


class TestTheorem3Small:
    """(2, 1) instances run in well under a second."""

    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_equivalence_21(self, prop):
        nfa = build_nondet_spec(2, 1, prop)
        dfa = build_det_spec(2, 1, prop)
        fwd = check_inclusion_in_dfa(nfa, dfa)
        assert fwd.holds, fwd.counterexample
        bwd = check_inclusion_antichain(dfa.to_nfa(), nfa)
        assert bwd.holds, bwd.counterexample

    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_canonical_determinization_agrees_21(self, prop):
        """Subset construction of Σ is equivalent to the hand-built Σd."""
        nfa = build_nondet_spec(2, 1, prop)
        canonical = determinize(nfa.compact()[0])
        hand_built = build_det_spec(2, 1, prop)
        res = check_equivalence_antichain(
            canonical.to_nfa(), hand_built.to_nfa()
        )
        assert res.equivalent, (res.in_a_not_b, res.in_b_not_a)

    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_one_thread_specs(self, prop):
        """n=1: every word is trivially both properties — the specs must
        accept the full single-thread language."""
        from repro.core.statements import statements
        import itertools

        nfa = build_nondet_spec(1, 1, prop)
        for L in range(0, 4):
            for w in itertools.product(statements(1, 1), repeat=L):
                assert nfa.accepts(w), w


class TestTheorem3Full:
    """The paper's (2, 2) instance."""

    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_equivalence_22(self, prop, request):
        nfa = request.getfixturevalue(
            "nondet_spec_ss_22" if prop is SS else "nondet_spec_op_22"
        )
        dfa = request.getfixturevalue(
            "det_spec_ss_22" if prop is SS else "det_spec_op_22"
        )
        fwd = check_inclusion_in_dfa(nfa, dfa)
        assert fwd.holds, fwd.counterexample
        bwd = check_inclusion_antichain(dfa.to_nfa(), nfa)
        assert bwd.holds, bwd.counterexample


class TestMinimalAutomata:
    """The canonical minimal safety DFAs are dramatically smaller than
    either spec — an observation beyond the paper, interesting for
    anyone reimplementing the specifications."""

    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_minimization_21(self, prop):
        dfa = build_det_spec(2, 1, prop)
        mini = dfa.compact()[0].minimize()
        assert mini.num_states < dfa.num_states
        # language preserved on sample words
        from repro.core.statements import statements
        import itertools

        for L in range(0, 4):
            for w in itertools.product(statements(2, 1), repeat=L):
                assert dfa.accepts(w) == mini.accepts(w)
