"""Specification correctness beyond (2, 2).

The reduction theorem makes (2, 2) decisive, but the specifications are
defined for any (n, k); these tests validate them on sampled words for
three threads and up to three variables against the reference deciders.
"""

import random

import pytest

from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import statements
from repro.spec import OP, SS
from repro.spec.det import det_spec_accepts
from repro.spec.nondet import spec_accepts


def _sampled_words(n, k, trials, max_len, seed):
    rng = random.Random(seed)
    alphabet = statements(n, k)
    for _ in range(trials):
        length = rng.randint(0, max_len)
        yield tuple(rng.choice(alphabet) for _ in range(length))


class TestThreeThreads:
    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_det_spec_agrees_31(self, prop):
        ref = is_strictly_serializable if prop is SS else is_opaque
        for w in _sampled_words(3, 1, 250, 9, seed=5):
            assert det_spec_accepts(w, 3, 1, prop) == ref(w), w

    @pytest.mark.slow
    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_det_spec_agrees_32(self, prop):
        ref = is_strictly_serializable if prop is SS else is_opaque
        for w in _sampled_words(3, 2, 400, 10, seed=6):
            assert det_spec_accepts(w, 3, 2, prop) == ref(w), w

    @pytest.mark.slow
    def test_nondet_spec_agrees_32_opacity(self):
        for w in _sampled_words(3, 2, 120, 8, seed=7):
            assert spec_accepts(w, 3, 2, OP) == is_opaque(w), w


class TestThreeVariables:
    @pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
    def test_det_spec_agrees_23(self, prop):
        ref = is_strictly_serializable if prop is SS else is_opaque
        for w in _sampled_words(2, 3, 250, 9, seed=8):
            assert det_spec_accepts(w, 2, 3, prop) == ref(w), w


class TestDegenerateInstances:
    def test_single_thread_everything_accepted(self):
        """One thread alone is always opaque (no concurrency)."""
        for w in _sampled_words(1, 2, 200, 8, seed=9):
            assert det_spec_accepts(w, 1, 2, OP)
            assert is_opaque(w)

    def test_zero_length_words(self):
        assert det_spec_accepts((), 3, 3, SS)
        assert spec_accepts((), 3, 3, OP)
