"""Differential tests for the compiled spec oracle.

The packed stepper (:func:`repro.spec.compiled.make_packed_step`) must be
*exact*: on every reachable Algorithm 6 state it has to agree with the
rich :func:`repro.spec.det.det_step` under the
:func:`~repro.spec.compiled.pack_spec_state` bijection, for every
statement, both properties.  These tests walk the full reachable state
spaces at small (n, k) and compare transition for transition, plus pin
the oracle's interning/memoization contract and its on-disk warm cache
(corrupt and version-stale payloads are ignored, never fatal).
"""

import os
import pickle

import pytest

from repro.cache import ENGINE_VERSION, cache_path
from repro.core.statements import statements as all_statements
from repro.spec import OP, SS
from repro.spec.compiled import (
    SINK,
    UNQUERIED,
    CompiledSpecOracle,
    cached_spec_oracle,
    clear_spec_oracle_cache,
    make_packed_step,
    pack_spec_state,
    statement_table,
    unpack_spec_state,
)
from repro.spec.det import det_step, initial_state

INSTANCES = [(2, 1), (2, 2), (3, 1)]
PROPS = [SS, OP]


def walk_rich(n, k, prop):
    """BFS the rich det_step reachable set; yields (state, stmt, succ)."""
    from collections import deque

    syms = statement_table(n, k)
    init = initial_state(n)
    seen = {init}
    queue = deque([init])
    while queue:
        state = queue.popleft()
        for stmt in syms:
            succ = det_step(state, stmt, prop)
            yield state, stmt, succ
            if succ is not None and succ not in seen:
                seen.add(succ)
                queue.append(succ)


@pytest.mark.parametrize("n,k", INSTANCES)
@pytest.mark.parametrize("prop", PROPS, ids=[p.value for p in PROPS])
def test_packed_step_exhaustive_differential(n, k, prop):
    """Packed vs rich det_step on every reachable (state, statement)."""
    step = make_packed_step(n, k, prop)
    syms = statement_table(n, k)
    sym_index = {s: i for i, s in enumerate(syms)}
    assert pack_spec_state(initial_state(n), n, k) == 0
    for state, stmt, succ in walk_rich(n, k, prop):
        packed = pack_spec_state(state, n, k)
        assert unpack_spec_state(packed, n, k) == state
        got = step(packed, sym_index[stmt])
        if succ is None:
            assert got is None, (state, stmt)
        else:
            assert got == pack_spec_state(succ, n, k), (state, stmt)


@pytest.mark.parametrize("n,k", [(2, 3), (3, 2)])
@pytest.mark.parametrize("prop", PROPS, ids=[p.value for p in PROPS])
def test_packed_step_differential_at_large_shapes(n, k, prop):
    """Capped BFS differential at the shapes the PR's benchmarks run on.

    The small-instance differentials above are exhaustive; these shapes
    are too big for that, but a layout bug specific to k >= 3 or to
    (n, k) = (3, 2) (e.g. an off-by-one in the record bit offsets that
    cancels out at k <= 2) would corrupt exactly the headline cells —
    so check the first few thousand reachable states here too.
    """
    from collections import deque

    step = make_packed_step(n, k, prop)
    syms = statement_table(n, k)
    cap = 2000
    init = initial_state(n)
    seen = {init}
    queue = deque([init])
    while queue:
        state = queue.popleft()
        packed = pack_spec_state(state, n, k)
        assert unpack_spec_state(packed, n, k) == state
        for i, stmt in enumerate(syms):
            rich = det_step(state, stmt, prop)
            got = step(packed, i)
            if rich is None:
                assert got is None, (state, stmt)
            else:
                assert got == pack_spec_state(rich, n, k), (state, stmt)
                if rich not in seen and len(seen) < cap:
                    seen.add(rich)
                    queue.append(rich)


def test_statement_table_is_canonical():
    """Statement ids are indices into core.statements.statements —
    shared with the compiled TM engine's symbol tables."""
    for n, k in INSTANCES:
        assert statement_table(n, k) == all_statements(
            n, k, include_abort=True
        )


def test_tm_engine_symbol_ids_match_spec_oracle():
    """The TM-side done/abort statement ids and the oracle's table agree."""
    from repro.tm import DSTM, compile_tm

    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    oracle = CompiledSpecOracle(2, 2, SS)
    assert engine._symbols == oracle.symbols
    for ti in range(tm.n):
        for ci, cmd in enumerate(engine.commands()):
            sym = engine._done_sym[ti][ci]
            assert oracle.symbols[sym].command == cmd
            assert oracle.symbols[sym].thread == ti + 1
        assert oracle.symbols[engine._abort_sym[ti]].is_abort


# ----------------------------------------------------------------------
# Oracle interning and memoization
# ----------------------------------------------------------------------


def test_oracle_memoizes_rows():
    oracle = CompiledSpecOracle(2, 2, SS)
    assert oracle.rows[0][0] == UNQUERIED
    first = oracle.step_id(0, 0)
    assert first >= 0
    assert oracle.rows[0][0] == first  # memoized in place
    assert oracle.step_id(0, 0) == first
    stats = oracle.stats()
    assert stats["filled_rows"] == 1
    assert stats["states"] == 2  # initial + the one successor


def test_oracle_rejections_are_cached_as_sink():
    """Some reachable (state, statement) rejects, and the rejection is
    memoized as SINK rather than re-evaluated."""
    oracle = CompiledSpecOracle(2, 2, SS)
    sid = 0
    while sid < len(oracle.states):
        for sym in range(oracle.num_symbols):
            if oracle.step_id(sid, sym) == SINK:
                assert oracle.rows[sid][sym] == SINK
                assert oracle.step_id(sid, sym) == SINK
                return
        sid += 1
    raise AssertionError("no rejection reachable in the (2,2) ss spec")


def test_cached_spec_oracle_shares_and_separates():
    clear_spec_oracle_cache()
    a = cached_spec_oracle(2, 2, SS)
    assert cached_spec_oracle(2, 2, SS) is a
    assert cached_spec_oracle(2, 2, OP) is not a
    assert cached_spec_oracle(2, 1, SS) is not a
    info = cached_spec_oracle.cache_info()
    assert info.hits >= 1 and info.misses >= 3
    clear_spec_oracle_cache()
    assert cached_spec_oracle(2, 2, SS) is not a


def test_oracle_independence_across_keys():
    """Queries against one (n, k, prop) oracle never leak into another."""
    clear_spec_oracle_cache()
    ss = cached_spec_oracle(2, 1, SS)
    op = cached_spec_oracle(2, 1, OP)
    for sym in range(ss.num_symbols):
        ss.step_id(0, sym)
    assert op.stats()["filled_rows"] == 0
    clear_spec_oracle_cache()


# ----------------------------------------------------------------------
# Warm-start persistence
# ----------------------------------------------------------------------


def _filled_oracle(n=2, k=1, prop=SS):
    """An oracle with every reachable row fully evaluated."""
    oracle = CompiledSpecOracle(n, k, prop)
    sid = 0
    while sid < len(oracle.states):  # states grows as rows fill
        for sym in range(oracle.num_symbols):
            oracle.step_id(sid, sym)
        sid += 1
    return oracle


def test_warm_cache_round_trip(tmp_path):
    d = str(tmp_path)
    oracle = _filled_oracle()
    assert oracle.save_warm(d)
    fresh = CompiledSpecOracle(2, 1, SS)
    assert fresh.load_warm(d)
    assert fresh.states == oracle.states
    assert fresh.rows == oracle.rows
    # restored tables serve queries without recomputation
    assert fresh.step_id(0, 0) == oracle.rows[0][0]


def test_warm_cache_save_is_dirty_gated(tmp_path):
    d = str(tmp_path)
    oracle = _filled_oracle()
    assert oracle.save_warm(d)
    assert not oracle.save_warm(d)  # nothing new since last spill


def test_warm_cache_not_loaded_into_used_oracle(tmp_path):
    d = str(tmp_path)
    _filled_oracle().save_warm(d)
    used = CompiledSpecOracle(2, 1, SS)
    used.step_id(0, 0)
    assert not used.load_warm(d)


def test_warm_cache_ignores_corrupt_file(tmp_path):
    d = str(tmp_path)
    oracle = _filled_oracle()
    oracle.save_warm(d)
    path = cache_path(d, oracle._cache_key())
    with open(path, "wb") as fh:
        fh.write(b"\x80garbage that is not a pickle")
    fresh = CompiledSpecOracle(2, 1, SS)
    assert not fresh.load_warm(d)
    assert fresh.step_id(0, 0) >= 0  # recomputes from scratch


def test_warm_cache_ignores_stale_engine_version(tmp_path):
    d = str(tmp_path)
    oracle = _filled_oracle()
    key = oracle._cache_key()
    with open(cache_path(d, key), "wb") as fh:
        pickle.dump(
            {
                "version": ENGINE_VERSION + 1,
                "key": key,
                "data": {
                    "states": list(oracle.states),
                    "rows": [list(r) for r in oracle.rows],
                },
            },
            fh,
        )
    fresh = CompiledSpecOracle(2, 1, SS)
    assert not fresh.load_warm(d)


def test_warm_cache_ignores_malformed_payloads(tmp_path):
    d = str(tmp_path)
    oracle = CompiledSpecOracle(2, 1, SS)
    key = oracle._cache_key()
    bad_payloads = [
        {"states": [0], "rows": []},  # length mismatch
        {"states": [1], "rows": [[UNQUERIED] * oracle.num_symbols]},
        {"states": [0], "rows": [[99] * oracle.num_symbols]},  # id range
        {"states": [0, 0], "rows": [[UNQUERIED] * oracle.num_symbols] * 2},
        {"states": "nope", "rows": "nope"},
        [],
    ]
    for data in bad_payloads:
        with open(cache_path(d, key), "wb") as fh:
            pickle.dump(
                {"version": ENGINE_VERSION, "key": key, "data": data}, fh
            )
        fresh = CompiledSpecOracle(2, 1, SS)
        assert not fresh.load_warm(d), data


def test_warm_cache_missing_dir_is_harmless(tmp_path):
    oracle = CompiledSpecOracle(2, 1, SS)
    missing = os.path.join(str(tmp_path), "does", "not", "exist")
    assert not oracle.load_warm(missing)
    oracle.step_id(0, 0)
    assert oracle.save_warm(missing)  # created on demand
    fresh = CompiledSpecOracle(2, 1, SS)
    assert fresh.load_warm(missing)


# ----------------------------------------------------------------------
# The int-rows spec DFA (materialized-path twin of the oracle)
# ----------------------------------------------------------------------


def test_compiled_spec_dfa_matches_rich_dfa():
    """CompiledSpecDFA's int table is the interned canonical DFA cell
    for cell: same state count, same successor per (state, statement)."""
    from repro.automata.interned import intern_dfa
    from repro.spec.build import cached_det_spec
    from repro.spec.compiled import CompiledSpecDFA

    cdfa = CompiledSpecDFA(2, 1, SS).ensure()
    dfa = cached_det_spec(2, 1, SS)
    interned = intern_dfa(dfa)
    assert cdfa.num_states == dfa.num_states == interned.n
    symbols = statement_table(2, 1)
    for idx in range(interned.n):
        rich_row = interned.delta[idx]
        for sym_id, stmt in enumerate(symbols):
            expected = rich_row.get(stmt, -1)
            assert cdfa.rows[idx][sym_id] == expected


def test_compiled_spec_dfa_rejects_malformed_payloads(tmp_path):
    from repro.cache import save_payload
    from repro.spec.compiled import CompiledSpecDFA

    d = str(tmp_path)
    key = CompiledSpecDFA(2, 1, SS)._cache_key()
    num_syms = len(statement_table(2, 1))
    bad_payloads = [
        "not a dict",
        {"rows": "not a list"},
        {"rows": []},  # no states at all
        {"rows": [tuple([0] * (num_syms - 1))]},  # wrong row width
        {"rows": [tuple([5] * num_syms)]},  # successor out of range
        {"rows": [tuple([-2] * num_syms)]},  # below SINK
    ]
    for payload in bad_payloads:
        save_payload(d, key, payload)
        fresh = CompiledSpecDFA(2, 1, SS)
        assert not fresh.load_warm(d), payload
        assert fresh.rows is None


def test_compiled_spec_dfa_load_refuses_used_table(tmp_path):
    from repro.spec.compiled import CompiledSpecDFA

    d = str(tmp_path)
    built = CompiledSpecDFA(2, 1, SS).ensure()
    assert built.save_warm(d)
    assert not built.load_warm(d)  # already holds a table


def test_oracle_intern_packed_is_stable():
    oracle = CompiledSpecOracle(2, 1, SS)
    sid = oracle.intern_packed(12345)
    assert oracle.intern_packed(12345) == sid
    assert oracle.states[sid] == 12345
    assert oracle.intern_packed(0) == 0  # the initial state keeps id 0


def test_warm_cache_rows_are_flat_arrays(tmp_path):
    """Rows persist as ONE flat typed vector (int32 under the typed-width
    policy) and restore as mutable per-state arrays of the persisted
    width; per-row lists and out-of-range cells are rejected."""
    from array import array

    d = str(tmp_path)
    oracle = _filled_oracle()
    assert oracle.save_warm(d)
    fresh = CompiledSpecOracle(2, 1, SS)
    assert fresh.load_warm(d)
    assert all(
        isinstance(row, array) and row.typecode == "i"
        for row in fresh.rows
    )
    key = oracle._cache_key()
    num = oracle.num_symbols
    for rows in (
        [UNQUERIED] * num,                       # list: not a typed vector
        array("i", [99] * num),                  # successor out of range
        array("i", [UNQUERIED] * (num - 1)),     # wrong flat length
        [array("q", [UNQUERIED] * num)],         # v3 per-row format
    ):
        with open(cache_path(d, key), "wb") as fh:
            pickle.dump(
                {
                    "version": ENGINE_VERSION,
                    "key": key,
                    "data": {"states": [0], "rows": rows},
                },
                fh,
            )
        bad = CompiledSpecOracle(2, 1, SS)
        assert not bad.load_warm(d)
