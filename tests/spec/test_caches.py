"""The spec memoization layer: process caches and their hit/miss contract.

``cached_det_spec`` / ``cached_nondet_spec`` (PR 1) and
``cached_spec_oracle`` (this PR) all memoize on ``(n, k, prop)``; these
tests pin that repeated lookups are hits returning the *same* object,
that distinct keys are fully independent, and that clearing really
forgets.  (The on-disk warm cache's invalidation story is covered in
``tests/spec/test_compiled.py`` and ``tests/checking/test_warm_cache.py``.)
"""

from repro.spec import (
    OP,
    SS,
    cached_det_spec,
    cached_nondet_spec,
    clear_spec_cache,
)


def test_det_spec_cache_hit_miss_accounting():
    clear_spec_cache()
    info0 = cached_det_spec.cache_info()
    assert info0.currsize == 0
    a = cached_det_spec(2, 1, SS)
    info1 = cached_det_spec.cache_info()
    assert info1.misses == info0.misses + 1
    b = cached_det_spec(2, 1, SS)
    info2 = cached_det_spec.cache_info()
    assert info2.hits == info1.hits + 1
    assert b is a


def test_nondet_spec_cache_hit_miss_accounting():
    clear_spec_cache()
    a = cached_nondet_spec(2, 1, SS)
    misses = cached_nondet_spec.cache_info().misses
    assert cached_nondet_spec(2, 1, SS) is a
    assert cached_nondet_spec.cache_info().misses == misses


def test_spec_caches_independent_across_keys():
    clear_spec_cache()
    ss = cached_det_spec(2, 1, SS)
    op = cached_det_spec(2, 1, OP)
    wider = cached_det_spec(2, 2, SS)
    assert ss is not op and ss is not wider and op is not wider
    # distinct automata, not views of one another
    assert ss.num_states != wider.num_states


def test_clear_spec_cache_forgets():
    clear_spec_cache()
    a = cached_det_spec(2, 1, SS)
    n = cached_nondet_spec(2, 1, SS)
    clear_spec_cache()
    assert cached_det_spec(2, 1, SS) is not a
    assert cached_nondet_spec(2, 1, SS) is not n


def test_det_and_nondet_caches_do_not_interfere():
    clear_spec_cache()
    cached_det_spec(2, 1, SS)
    assert cached_nondet_spec.cache_info().currsize == 0
