"""Tests for the canonical/minimal specification constructions."""

import itertools

import pytest

from repro.core.statements import statements
from repro.spec import OP, SS
from repro.spec.build import build_canonical_spec, build_minimal_spec
from repro.spec.det import build_det_spec


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
class TestCanonical:
    def test_language_agrees_with_hand_built_21(self, prop):
        canonical = build_canonical_spec(2, 1, prop)
        hand = build_det_spec(2, 1, prop)
        for L in range(0, 5):
            for w in itertools.product(statements(2, 1), repeat=L):
                assert canonical.accepts(w) == hand.accepts(w), w

    def test_canonical_is_larger(self, prop):
        canonical = build_canonical_spec(2, 1, prop)
        hand = build_det_spec(2, 1, prop)
        # the hand-built automaton is the compact one (Section 5.3)
        assert canonical.num_states >= hand.num_states


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
class TestMinimal:
    def test_minimal_below_hand_built(self, prop):
        minimal = build_minimal_spec(2, 1, prop)
        hand = build_det_spec(2, 1, prop)
        assert minimal.num_states <= hand.num_states

    def test_language_preserved(self, prop):
        minimal = build_minimal_spec(2, 1, prop)
        hand = build_det_spec(2, 1, prop)
        for L in range(0, 5):
            for w in itertools.product(statements(2, 1), repeat=L):
                assert minimal.accepts(w) == hand.accepts(w), w


class TestMinimal22:
    @pytest.mark.slow
    def test_minimal_sizes_22(self):
        """The minimal safety DFAs for (2,2) — numbers beyond the paper,
        pinned here for reproducibility."""
        ss = build_minimal_spec(2, 2, SS)
        op = build_minimal_spec(2, 2, OP)
        assert ss.num_states < 3424
        assert op.num_states < 2272
        # minimality is canonical: re-minimizing changes nothing
        assert ss.minimize().num_states == ss.num_states
