"""Tests for the nondeterministic specifications Σss / Σop (Algorithm 5).

The anchor is differential agreement with the reference graph-based
checkers: exhaustively on short words, randomly on longer ones, plus the
regression words that exposed the invalid-status subtlety.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import parse_word, statements
from repro.spec import OP, SS
from repro.spec.nondet import (
    build_nondet_spec,
    initial_state,
    nondet_epsilon,
    nondet_step,
    spec_accepts,
)

ALPHABET_22 = statements(2, 2)


class TestMechanics:
    def test_initial_state_shape(self):
        q = initial_state(2)
        assert len(q) == 2
        assert all(rec[0] == "fin" for rec in q)

    def test_epsilon_requires_started(self):
        q = initial_state(2)
        assert nondet_epsilon(q, 1, SS) is None

    def test_read_starts_transaction(self):
        q = nondet_step(initial_state(2), parse_word("(r,1)1")[0], SS)
        assert q[0][0] == "start"
        assert 1 in q[0][2]  # rs

    def test_commit_requires_serialization(self):
        q = nondet_step(initial_state(2), parse_word("(r,1)1")[0], SS)
        assert nondet_step(q, parse_word("c1")[0], SS) is None

    def test_commit_after_epsilon(self):
        q = nondet_step(initial_state(2), parse_word("(r,1)1")[0], SS)
        q = nondet_epsilon(q, 1, SS)
        assert q is not None and q[0][0] == "ser"
        q = nondet_step(q, parse_word("c1")[0], SS)
        assert q is not None and q[0][0] == "fin"

    def test_empty_commit_allowed(self):
        q = nondet_step(initial_state(2), parse_word("c1")[0], SS)
        assert q == initial_state(2)

    def test_abort_resets(self):
        q = nondet_step(initial_state(2), parse_word("(w,1)1")[0], OP)
        q = nondet_step(q, parse_word("a1")[0], OP)
        assert q == initial_state(2)

    def test_local_read_is_noop(self):
        w = parse_word("(w,1)1 (r,1)1")
        q = nondet_step(initial_state(2), w[0], SS)
        assert nondet_step(q, w[1], SS) == q


class TestDifferentialExhaustive:
    @pytest.mark.parametrize("length", [0, 1, 2, 3])
    def test_agrees_with_reference(self, length):
        for tup in itertools.product(ALPHABET_22, repeat=length):
            assert spec_accepts(tup, 2, 2, SS) == is_strictly_serializable(
                tup
            ), tup
            assert spec_accepts(tup, 2, 2, OP) == is_opaque(tup), tup

    @pytest.mark.slow
    def test_agrees_with_reference_length4(self):
        for tup in itertools.product(ALPHABET_22, repeat=4):
            assert spec_accepts(tup, 2, 2, SS) == is_strictly_serializable(
                tup
            ), tup
            assert spec_accepts(tup, 2, 2, OP) == is_opaque(tup), tup


@st.composite
def words_22(draw, max_len=10):
    length = draw(st.integers(0, max_len))
    return tuple(
        draw(st.sampled_from(ALPHABET_22)) for _ in range(length)
    )


class TestDifferentialRandom:
    @given(words_22())
    @settings(max_examples=150, deadline=None)
    def test_ss_agrees(self, w):
        assert spec_accepts(w, 2, 2, SS) == is_strictly_serializable(w)

    @given(words_22())
    @settings(max_examples=150, deadline=None)
    def test_op_agrees(self, w):
        assert spec_accepts(w, 2, 2, OP) == is_opaque(w)


class TestRegressions:
    """Words that exposed the invalid-vs-doomed distinction."""

    def test_resurrected_pending_word(self):
        w = parse_word("(r,1)1 (w,1)2 c2 (r,2)2 (w,1)1 c2 c1")
        assert not spec_accepts(w, 2, 2, SS)
        assert not spec_accepts(w, 2, 2, OP)

    def test_doomed_serialized_reader_word(self):
        w = parse_word("(r,1)1 (w,2)1 (r,2)2 (w,1)2 c2 (r,1)1")
        assert spec_accepts(w, 2, 2, SS)
        assert not spec_accepts(w, 2, 2, OP)

    def test_late_epsilon_interleaving(self):
        # opaque only if both serialization points interleave correctly
        w = parse_word("(w,1)2 (r,1)1 c2")
        assert spec_accepts(w, 2, 2, OP)


class TestPaperFigures:
    @pytest.mark.parametrize(
        "text,n,k,ss,op",
        [
            ("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3", 3, 2, False, False),
            ("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1", 3, 2, True, False),
            ("(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1", 3, 2, True, False),
            (
                "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3",
                3,
                3,
                False,
                False,
            ),
        ],
    )
    def test_figures(self, text, n, k, ss, op):
        w = parse_word(text)
        assert spec_accepts(w, n, k, SS) == ss
        assert spec_accepts(w, n, k, OP) == op


class TestAutomaton:
    def test_state_counts_22(self, nondet_spec_ss_22, nondet_spec_op_22):
        """Close to the paper's 12345 (ss) and 9202 (op)."""
        assert nondet_spec_ss_22.num_states == 12796
        assert nondet_spec_op_22.num_states == 8396

    def test_automaton_agrees_with_simulation(self, nondet_spec_ss_22):
        for text in [
            "(r,1)1 (w,1)2 c2 c1",
            "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1",
            "(r,1)1 (r,1)2 c1 c2",
        ]:
            w = parse_word(text)
            assert nondet_spec_ss_22.accepts(w) == spec_accepts(w, 2, 2, SS)

    def test_op_subset_of_ss(self):
        """piop ⊆ piss at the automaton level on sampled words."""
        import random

        rng = random.Random(3)
        for _ in range(300):
            w = tuple(
                rng.choice(ALPHABET_22) for _ in range(rng.randint(0, 8))
            )
            if spec_accepts(w, 2, 2, OP):
                assert spec_accepts(w, 2, 2, SS)
