"""Shared fixtures: expensive automata are built once per session."""

from __future__ import annotations

import pytest

from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.spec.nondet import build_nondet_spec


@pytest.fixture(scope="session")
def det_spec_ss_22():
    """Σdss for 2 threads, 2 variables (Algorithm 6)."""
    return build_det_spec(2, 2, SS)


@pytest.fixture(scope="session")
def det_spec_op_22():
    """Σdop for 2 threads, 2 variables (Algorithm 6)."""
    return build_det_spec(2, 2, OP)


@pytest.fixture(scope="session")
def nondet_spec_ss_22():
    """Σss for 2 threads, 2 variables (Algorithm 5)."""
    return build_nondet_spec(2, 2, SS)


@pytest.fixture(scope="session")
def nondet_spec_op_22():
    """Σop for 2 threads, 2 variables (Algorithm 5)."""
    return build_nondet_spec(2, 2, OP)


@pytest.fixture(scope="session")
def det_spec_ss_21():
    return build_det_spec(2, 1, SS)


@pytest.fixture(scope="session")
def det_spec_op_21():
    return build_det_spec(2, 1, OP)
