"""Legacy setup shim.

The execution environment has no `wheel` package and no network access, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
newer toolchains) work everywhere.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
