"""Regenerate the paper's result tables end to end.

Reproduces Table 2 (safety of seq/2PL/DSTM/TL2 + the modified-TL2
violation), Theorem 3 (spec equivalence), and Table 3 (liveness with
contention managers) in one run.

Run:  python examples/verify_paper_results.py        (~1 minute)
"""

import time

from repro import (
    DSTM,
    OP,
    SS,
    TL2,
    AggressiveManager,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
)
from repro.automata import check_inclusion_antichain, check_inclusion_in_dfa
from repro.checking import (
    build_specs,
    check_livelock_freedom,
    check_obstruction_freedom,
    check_safety,
    check_wait_freedom,
    render_table,
)
from repro.spec import build_nondet_spec
from repro.tm import build_liveness_graph


def table2() -> None:
    print("building deterministic specifications Σdss, Σdop for (2,2)...")
    specs = build_specs(2, 2)
    rows = []
    for tm in [
        SequentialTM(2, 2),
        TwoPhaseLockingTM(2, 2),
        DSTM(2, 2),
        TL2(2, 2),
        ManagedTM(ModifiedTL2(2, 2), PoliteManager()),
    ]:
        cells = [tm.name]
        size = None
        for prop in (SS, OP):
            res = check_safety(tm, prop, spec=specs[prop])
            size = res.tm_states
            cells.append(res.verdict())
        cells.insert(1, str(size))
        rows.append(cells)
    print(
        render_table(
            "\nTable 2: language inclusion for TM algorithms (2,2)",
            ["TM", "Size", "L(A) ⊆ L(Σss)", "L(A) ⊆ L(Σop)"],
            rows,
        )
    )


def theorem3() -> None:
    print("\nTheorem 3: L(Σ) = L(Σd) via antichains")
    specs = build_specs(2, 2)
    for prop in (SS, OP):
        nondet = build_nondet_spec(2, 2, prop)
        t0 = time.time()
        fwd = check_inclusion_in_dfa(nondet, specs[prop])
        bwd = check_inclusion_antichain(specs[prop].to_nfa(), nondet)
        assert fwd.holds and bwd.holds
        print(
            f"  {prop.value}: nondet {nondet.num_states} states,"
            f" det {specs[prop].num_states} states,"
            f" equivalent ({time.time() - t0:.1f}s)"
        )


def table3() -> None:
    rows = []
    for tm in [
        SequentialTM(2, 1),
        TwoPhaseLockingTM(2, 1),
        ManagedTM(DSTM(2, 1), AggressiveManager()),
        ManagedTM(TL2(2, 1), PoliteManager()),
    ]:
        graph = build_liveness_graph(tm)
        cells = [tm.name, str(len(graph.nodes))]
        for check in (
            check_obstruction_freedom,
            check_livelock_freedom,
            check_wait_freedom,
        ):
            cells.append(check(tm, graph=graph).verdict())
        rows.append(cells)
    print(
        render_table(
            "\nTable 3: model checking liveness (2,1)",
            ["TM", "States", "Obstruction freedom", "Livelock freedom",
             "Wait freedom"],
            rows,
        )
    )


if __name__ == "__main__":
    table2()
    theorem3()
    table3()
