"""Liveness across contention managers (Section 6).

Safety never depends on the manager (L(Acm) ⊆ L(A)), but liveness does:
the same DSTM is obstruction free under the aggressive manager and not
under the polite one; bounded-Karma sits in between.  This example runs
the (2,1) liveness suite for DSTM and TL2 under several managers.

Run:  python examples/contention_managers.py        (~15 seconds)
"""

from repro import (
    DSTM,
    TL2,
    AggressiveManager,
    BoundedKarmaManager,
    ManagedTM,
    PermissiveManager,
    PoliteManager,
)
from repro.checking import (
    check_livelock_freedom,
    check_obstruction_freedom,
    check_wait_freedom,
    render_table,
)
from repro.tm import build_liveness_graph


def cell(result) -> str:
    if result.holds:
        return "Y"
    return "N [" + ", ".join(str(s) for s in result.loop) + "]"


def main() -> None:
    managers = [
        AggressiveManager(),
        PoliteManager(),
        PermissiveManager(),
        BoundedKarmaManager(2, bound=2),
    ]
    for base_factory in (DSTM, TL2):
        rows = []
        for cm in managers:
            tm = ManagedTM(base_factory(2, 1), cm)
            graph = build_liveness_graph(tm)
            rows.append(
                [
                    tm.name,
                    str(len(graph.nodes)),
                    cell(check_obstruction_freedom(tm, graph=graph)),
                    cell(check_livelock_freedom(tm, graph=graph)),
                    cell(check_wait_freedom(tm, graph=graph)),
                ]
            )
        print(
            render_table(
                f"\n{base_factory.__name__} under different managers (2,1)",
                ["TM+manager", "States", "Obstruction f.", "Livelock f.",
                 "Wait f."],
                rows,
            )
        )

    print(
        "\nReading: the aggressive manager gives DSTM obstruction freedom\n"
        "(Table 3); no manager rescues livelock freedom — two aggressive\n"
        "transactions can steal ownership from each other forever."
    )


if __name__ == "__main__":
    main()
