"""Figures 1–3, narrated: why each example word fails, and how the
specification's commit conditions C1–C4 enforce it.

Also demonstrates the DOT export: writes `lasso.dot` and `spec11.dot`
next to this script (render with `dot -Tsvg` if graphviz is available).

Run:  python examples/figures_walkthrough.py
"""

import os

from repro.automata import lasso_to_dot, dfa_to_dot
from repro.core import (
    is_opaque,
    is_strictly_serializable,
    opacity_witness,
    parse_word,
    strict_serializability_witness,
)
from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.spec.nondet import initial_state, nondet_epsilon, nondet_step

FIGURES = [
    (
        "Figure 1(a)",
        "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3",
        "x reads v1 before y commits it (x<y); z reads v2 before x\n"
        "commits it (z<x); but z reads v1 after y committed (y<z).",
    ),
    (
        "Figure 1(b)",
        "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3",
        "x<y on v1, z<x on v3, and y<z on v2 — a three-cycle.",
    ),
    (
        "Figure 2(a)",
        "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1",
        "z never commits, so strict serializability is satisfied; but\n"
        "opacity protects z's reads, which force z between y and x.",
    ),
    (
        "Figure 2(b)",
        "(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1",
        "even an *aborting* z constrains x: z follows y in real time and\n"
        "read v2 before x wrote it, so x cannot commit under opacity.",
    ),
]


def walk_figures() -> None:
    for name, text, story in FIGURES:
        w = parse_word(text)
        ss, op = is_strictly_serializable(w), is_opaque(w)
        print(f"{name}: [{text}]")
        print(f"  strictly serializable: {ss}   opaque: {op}")
        witness = (
            strict_serializability_witness(w) if not ss else opacity_witness(w)
        )
        if witness.cycle_explanation:
            print(f"  cycle: {witness.cycle_explanation}")
        for line in story.splitlines():
            print(f"  | {line}")
        print()


def walk_conditions() -> None:
    """Figure 3: drive Σss through each condition with explicit ε's."""
    print("Figure 3: the four commit-disallowing conditions of Σss")
    scenarios = {
        "C1 (read after predecessor's commit-write)":
            ["(w,2)1", "e1", "(w,1)2", "e2", "c2", "(r,1)1", "c1"],
        "C2 (successor read our uncommitted write)":
            ["(w,1)1", "e1", "(r,1)2", "e2", "c2", "c1"],
        "C3 (write-write, successor committed first)":
            ["(w,1)1", "e1", "(w,1)2", "e2", "c2", "c1"],
        "C4 (stale read of a successor's write)":
            ["(w,1)2", "e2", "(r,1)1", "e1", "c2", "c1"],
    }
    for name, moves in scenarios.items():
        q = initial_state(2)
        rejected_at = None
        for m in moves:
            if m in ("e1", "e2"):
                q = nondet_epsilon(q, int(m[1]), SS)
            else:
                q = nondet_step(q, parse_word(m)[0], SS)
            if q is None:
                rejected_at = m
                break
        print(f"  {name}: commit rejected at {rejected_at!r}")
        assert rejected_at == "c1"
    print()


def export_dot() -> None:
    out_dir = os.path.dirname(os.path.abspath(__file__))
    # Table 3's seq counterexample as a lasso picture
    from repro.checking import check_obstruction_freedom
    from repro.tm import SequentialTM

    res = check_obstruction_freedom(SequentialTM(2, 1))
    lasso_path = os.path.join(out_dir, "lasso.dot")
    with open(lasso_path, "w") as fh:
        fh.write(
            lasso_to_dot(
                [str(s) for s in res.stem], [str(s) for s in res.loop]
            )
        )
    # the (1,1) opacity specification is small enough to draw whole
    spec = build_det_spec(1, 1, OP).compact()[0]
    spec_path = os.path.join(out_dir, "spec11.dot")
    with open(spec_path, "w") as fh:
        fh.write(dfa_to_dot(spec, symbol_label=str, name="sigma_d_op_11"))
    print(f"wrote {lasso_path} and {spec_path} (render with `dot -Tsvg`)")


if __name__ == "__main__":
    walk_figures()
    walk_conditions()
    export_dot()
