"""Quickstart: words, safety properties, and model checking a TM.

Run:  python examples/quickstart.py
"""

from repro import (
    DSTM,
    OP,
    SS,
    check_safety,
    format_word,
    is_opaque,
    is_strictly_serializable,
    parse_word,
)
from repro.core import opacity_witness


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Words and the safety properties, offline.
    # ------------------------------------------------------------------
    # The paper's compact notation: (r,1)2 = thread 2 reads variable 1.
    word = parse_word("(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1")
    print(f"word: {format_word(word)}")
    print(f"  strictly serializable: {is_strictly_serializable(word)}")
    print(f"  opaque:                {is_opaque(word)}")

    # Why is it not opaque?  The witness machinery explains the cycle.
    witness = opacity_witness(word)
    print(f"  precedence cycle: {witness.cycle_explanation}")

    # ------------------------------------------------------------------
    # 2. Model checking a TM algorithm (one Table 2 cell).
    # ------------------------------------------------------------------
    # DSTM applied to the most general program with 2 threads and 2
    # variables, checked against the deterministic opacity spec.
    print("\nchecking DSTM against opacity for (2,2)...")
    result = check_safety(DSTM(2, 2), OP)
    print(f"  TM states: {result.tm_states}")
    print(f"  spec states: {result.spec_states}")
    print(f"  verdict: {result.verdict()}")
    assert result.holds

    # By Theorem 1 (DSTM satisfies the structural properties P1-P4),
    # this (2,2) verdict extends to all programs: DSTM ensures opacity.
    ss = check_safety(DSTM(2, 2), SS)
    print(f"  strict serializability too: {ss.verdict()}")


if __name__ == "__main__":
    main()
