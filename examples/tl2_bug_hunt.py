"""The TL2 ambiguity of Section 5.4, replayed.

The published TL2 algorithm validates a commit in two logical steps:
*rvalidate* (the read set's versions are current) and *chklock* (no read
set entry is locked by another thread).  The paper found the published
ordering ambiguous — and shows that executing rvalidate and chklock as
separate atomic operations, in that order, is unsafe.  The version bit
and lock bit must share a memory word (or chklock must come first).

This example drives the model checker through the whole story:

1. atomic TL2 is opaque;
2. the split-validation "modified TL2" produces a non-serializable word;
3. the counterexample is explained via its precedence cycle;
4. bonus finding: the read-time lock check is load-bearing too.

Run:  python examples/tl2_bug_hunt.py        (~30 seconds)
"""

from repro import (
    OP,
    SS,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    check_safety,
    format_word,
    is_opaque,
    is_strictly_serializable,
    parse_word,
)
from repro.checking import build_specs
from repro.core import strict_serializability_witness
from repro.tm import language_contains


def main() -> None:
    specs = build_specs(2, 2)

    # ------------------------------------------------------------------
    # 1. Atomic TL2 is safe.
    # ------------------------------------------------------------------
    print("1. TL2 with atomic validation:")
    for prop in (SS, OP):
        res = check_safety(TL2(2, 2), prop, spec=specs[prop])
        print(f"   {prop.value}: {res.verdict()}")
        assert res.holds

    # ------------------------------------------------------------------
    # 2. Split validation is not.
    # ------------------------------------------------------------------
    print("\n2. Modified TL2 (atomic rvalidate, then atomic chklock):")
    tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
    res = check_safety(tm, SS, spec=specs[SS])
    print(f"   ss: {res.verdict()}")
    assert not res.holds

    # ------------------------------------------------------------------
    # 3. Explain the violation.
    # ------------------------------------------------------------------
    cex = res.counterexample
    print(f"\n3. Why [{format_word(cex)}] is not strictly serializable:")
    witness = strict_serializability_witness(cex)
    print(f"   {witness.cycle_explanation}")
    print(
        "   Both transactions pass rvalidate before either commits, and\n"
        "   each passes chklock after the other has released its locks —\n"
        "   the conflict falls into the window between the two steps."
    )

    # The paper's own counterexample w1 is in the bad language too.
    w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
    assert language_contains(tm, w1) and not is_strictly_serializable(w1)
    print(f"   (the paper's w1 = [{format_word(w1)}] is also producible)")

    # ------------------------------------------------------------------
    # 4. Bonus: reads must sample the lock bit as well.
    # ------------------------------------------------------------------
    print("\n4. TL2 with Algorithm 4's literal read (no lock check):")
    literal = TL2(2, 2, read_checks_lock=False)
    for prop in (SS, OP):
        res = check_safety(literal, prop, spec=specs[prop])
        print(f"   {prop.value}: {res.verdict()}")
    cex = check_safety(literal, OP, spec=specs[OP]).counterexample
    assert is_strictly_serializable(cex) and not is_opaque(cex)
    print(
        "   Strictly serializable but not opaque: an aborting reader can\n"
        "   observe a variable whose commit lock is held by a validated\n"
        "   writer.  The published TL2 avoids this because reads sample\n"
        "   the lock bit together with the version number."
    )


if __name__ == "__main__":
    main()
