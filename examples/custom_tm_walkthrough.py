"""Verifying your own TM algorithm — the workflow of Section 8.

"To verify the correctness of a new TM using our methodology, one would
proceed as follows.  First, one needs to manually express the TM as a
transition system, and manually check that the structural properties
hold for the TM.  Then, our tool automatically checks the desired safety
or liveness property."

This example builds a deliberately naive TM — *blind versioning*: reads
record a version, writes buffer, commit succeeds if nobody committed a
conflicting write **since the last read** but forgets to validate reads
against in-flight writers' commits ordering... in short, it validates
write-write conflicts only.  The checker finds the classic lost-read
anomaly, we fix the algorithm, and the fix verifies.

Run:  python examples/custom_tm_walkthrough.py        (~20 seconds)
"""

from typing import List, Tuple

from repro import OP, SS, check_safety, format_word
from repro.core.statements import Command, Kind
from repro.reduction import check_all_safety_properties
from repro.tm import Ext, Resp, TMAlgorithm, TMState

EMPTY = frozenset()


class BlindVersioningTM(TMAlgorithm):
    """A write-buffering TM that only validates write-write conflicts.

    State per thread: ``(rs, ws, ms)`` — read set, write set, and the
    set of variables committed by others since the transaction started.
    Commit succeeds iff ``ws ∩ ms = ∅`` (write-write check) — reads are
    *not* validated, which is the planted bug.
    """

    name = "blind"
    validate_reads = False

    def initial_state(self) -> TMState:
        return ((EMPTY, EMPTY, EMPTY),) * self.n

    def _with(self, state, thread, view):
        idx = thread - 1
        return state[:idx] + (view,) + state[idx + 1 :]

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        rs, ws, ms = state[thread - 1]
        if cmd.kind is Kind.READ:
            v = cmd.var
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            new = self._with(state, thread, (rs | {v}, ws, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        if cmd.kind is Kind.WRITE:
            new = self._with(state, thread, (rs, ws | {cmd.var}, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        # commit: validate, publish our writes into others' ms
        conflict = ws & ms if not self.validate_reads else (ws | rs) & ms
        if conflict:
            return []  # abort enabled
        new = list(state)
        new[thread - 1] = (EMPTY, EMPTY, EMPTY)
        for u in self.threads():
            if u == thread:
                continue
            rs_u, ws_u, ms_u = new[u - 1]
            if rs_u | ws_u:  # active transaction
                new[u - 1] = (rs_u, ws_u, ms_u | ws)
        return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        return self._with(state, thread, (EMPTY, EMPTY, EMPTY))


class CommitValidatingTM(BlindVersioningTM):
    """First fix: commit validates the read set as well.

    Enough for strict serializability — committed transactions are
    consistent — but not for opacity: a transaction that will abort can
    still observe two incompatible versions before its commit-time
    validation ever runs.
    """

    name = "commit-validating"
    validate_reads = True


class ReadValidatingTM(CommitValidatingTM):
    """Second fix: reads of a variable modified since the transaction
    began have no progress transition (the transaction aborts), exactly
    TL2's ``ms`` check.  This closes the opacity gap."""

    name = "read-validating"

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        rs, ws, ms = state[thread - 1]
        if cmd.kind is Kind.READ and cmd.var in ms and cmd.var not in ws:
            return []  # stale: abort instead of serving the read
        return super().progress(state, cmd, thread)


def main() -> None:
    # Step 1 (manual in the paper, mechanical here): the structural
    # properties, so a (2,2) verdict will generalize by Theorem 1.
    print("structural properties of the new TM (bounded evidence):")
    for report in check_all_safety_properties(BlindVersioningTM(2, 2), 4):
        print(f"  {report}")

    # Step 2: the automatic check.
    print("\nchecking the blind TM against strict serializability...")
    res = check_safety(BlindVersioningTM(2, 2), SS)
    print(f"  verdict: {res.verdict()}")
    assert not res.holds
    print(
        f"  the tool found the anomaly: [{format_word(res.counterexample)}]\n"
        "  (a committed writer invalidated a read that commit never checked)"
    )

    # Step 3: first fix — validate reads at commit time.
    print("\nchecking the commit-validating TM...")
    ss = check_safety(CommitValidatingTM(2, 2), SS)
    op = check_safety(CommitValidatingTM(2, 2), OP)
    print(f"  ss: {ss.verdict()}")
    print(f"  op: {op.verdict()}")
    assert ss.holds and not op.holds
    print(
        "  strictly serializable, but not opaque: a doomed transaction\n"
        "  still reads two incompatible snapshots before its commit-time\n"
        "  validation would have caught it."
    )

    # Step 4: second fix — validate reads at read time (TL2's ms check).
    print("\nchecking the read-validating TM...")
    for prop in (SS, OP):
        res = check_safety(ReadValidatingTM(2, 2), prop)
        print(f"  {prop.value}: {res.verdict()}")
        assert res.holds
    print(
        "\nthe read-validating TM ensures opacity for (2,2); with the\n"
        "structural properties above, Theorem 1 lifts this to all\n"
        "programs."
    )


if __name__ == "__main__":
    main()
