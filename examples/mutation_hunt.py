"""The mutation bug-hunt farm, end to end.

Section 5.4's split-validation bug is one seeded mutant among many:
``repro.tm.mutate`` perturbs one rule of a framework TM per operator —
drop a validation conjunct, skip a version bump, ignore readers — and
the hunt layer sweeps every mutant through the safety matrix, checking
that the model checker kills exactly the seeded bugs (and none of the
deliberately-correct decoys).

This example runs a compact hunt in-process:

1. the roster: mutant ids, expected verdicts, summaries;
2. a hunt over the TL2 and 2PL mutants at (2, 2), both properties,
   journaled to a temp file like the real ``repro hunt``;
3. the ranked report — the paper's bug rediscovered automatically;
4. a seeded replicate showing mutant parameters are deterministic.

Run:  python examples/mutation_hunt.py        (~60 seconds)
"""

import os
import tempfile

from repro.campaign import (
    build_hunt_report,
    hunt_exit_code,
    parse_hunt_spec,
    render_hunt_markdown,
    run_hunt,
)
from repro.tm import OPERATORS, default_mutants, make_mutant


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The shipped roster.
    # ------------------------------------------------------------------
    print("1. Default mutant roster:")
    for mid in default_mutants():
        cls = OPERATORS[mid.partition("@")[0]]
        verdict = "bug    " if cls.expect_bug else "correct"
        print(f"   {verdict}  {mid:<32} {cls.summary}")

    # ------------------------------------------------------------------
    # 2. Hunt the TL2 and 2PL families.
    # ------------------------------------------------------------------
    spec = parse_hunt_spec(
        {
            "name": "example-hunt",
            "mutants": ["tl2/*", "2pl/*"],
            "controls": ["tl2", "norec"],
            "properties": ["ss", "op"],
            "sizes": [[2, 2]],
        }
    )
    print(
        f"\n2. Hunting {len(spec.tms)} TMs across"
        f" {len(spec.campaign.cells)} cells..."
    )
    with tempfile.TemporaryDirectory() as tmp:
        run = run_hunt(
            spec,
            os.path.join(tmp, "hunt.jsonl"),
            progress=lambda line: print(f"   {line}"),
        )
    report = build_hunt_report(spec, run)

    # ------------------------------------------------------------------
    # 3. The ranked verdicts.
    # ------------------------------------------------------------------
    print("\n3. Report:\n")
    print(render_hunt_markdown(report))
    code = hunt_exit_code(report)
    print(f"exit code: {code} (1 = every seeded bug caught)")
    assert code == 1, report["summary"]
    split = next(
        m for m in report["mutants"] if m["tm"] == "tl2/split-validation"
    )
    assert split["verdict"] == "caught"
    print(
        "\nSection 5.4 rediscovered:"
        f" {split['counterexample']} via {split['counterexample_cell']}"
    )

    # ------------------------------------------------------------------
    # 4. Seeds draw parameters deterministically.
    # ------------------------------------------------------------------
    print("\n4. Seeded replicates:")
    for mid in ("tl2/skip-version-bump", "tl2/skip-version-bump@seed1"):
        tm = make_mutant(mid, 2, 2)
        print(f"   {mid}: skips the version bump of v{tm._skip_var}")


if __name__ == "__main__":
    main()
